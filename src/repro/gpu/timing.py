"""Reference kernel timing model.

This is the microarchitecture-level model that plays the role of *real
hardware* in the reproduction: the host GPU device model uses it to time
kernel executions (producing the profiles the paper reads from the
manufacturer's profiler), and running it with the target architecture's
parameters provides the ground-truth "observed execution on an actual
target device" against which the estimators of
:mod:`repro.core.estimation` are judged (paper Fig. 12).

Model structure
---------------
A launch of ``grid`` blocks distributes blocks round-robin over the SMs;
the most-loaded SM carries ``ceil(grid / sm_count)`` blocks and determines
the elapsed issue time.  This directly yields the grid-alignment staircase
of the paper's Fig. 10(b) and Eq. (9): every grid size in
``(k-1)*sm_count+1 .. k*sm_count`` costs the same.

Elapsed cycles are **issue + data stalls + other stalls**:

* **issue cycles** — per-warp instruction issue through each SM's
  schedulers at per-type reciprocal throughput (Eq. 3's tau), quantized
  to full device waves;
* **data stalls** — the probabilistic cache model's
  Upsilon[data]{K,T}: the larger of exposed miss-latency stalls and the
  DRAM-bandwidth time the issue stream cannot hide;
* **other stalls** — a small fixed pipeline/launch overhead plus a
  fraction of issue (fetch/sync hiccups).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import cache as _disk_cache
from ..caching import caches_enabled
from ..kernels.compiler import CompiledKernel
from ..obs import metrics as _obs_metrics
from ..kernels.ir import ALL_TYPES, InstructionMix, InstructionType, MEMORY_TYPES
from ..kernels.launch import LaunchConfig
from . import cache as cache_model
from . import vectimes as _vectimes
from .arch import GPUArchitecture

#: Fraction of ideal issue cycles lost to miscellaneous (non-data) stalls:
#: instruction fetch, synchronization, pipeline drain.
OTHER_STALL_FRACTION = 0.04

#: Fixed per-launch pipeline ramp cycles (in addition to the driver-level
#: launch overhead accounted in milliseconds by the device model).
PIPELINE_RAMP_CYCLES = 1500.0

#: Default bound on a timing model's profile memo.  The multiplexed VPs
#: launch the same few (kernel, geometry) pairs thousands of times, so a
#: few thousand distinct entries cover any realistic simulation.
DEFAULT_PROFILE_CACHE_SIZE = 4096


@dataclass(frozen=True)
class ExecutionProfile:
    """Everything the profiler learns from one kernel execution.

    This is the reproduction's analog of the vendor profiler output the
    paper lists in Section 2: "the number of executed instructions (per
    instruction type), the elapsed clock cycles, and the percentages of
    each occurred stall".
    """

    kernel_name: str
    arch_name: str
    launch: LaunchConfig
    sigma: Dict[InstructionType, float]
    issue_cycles: float
    memory_cycles: float
    data_stall_cycles: float
    other_stall_cycles: float
    elapsed_cycles: float
    time_ms: float
    cache_hits: float
    cache_misses: float
    cache_hit_probability: float
    waves: int
    occupancy: float

    @property
    def sigma_total(self) -> float:
        return sum(self.sigma.values())

    @property
    def stall_fraction(self) -> float:
        if self.elapsed_cycles <= 0:
            return 0.0
        return (self.data_stall_cycles + self.other_stall_cycles) / self.elapsed_cycles

    def stall_breakdown(self) -> Dict[str, float]:
        """Percentages of elapsed cycles per stall reason.

        A degenerate launch (zero or negative elapsed cycles) reports 0%
        for every reason — the same guard :attr:`stall_fraction` applies,
        so the two views can never disagree about whether stalls exist.
        """
        if self.elapsed_cycles <= 0:
            return {"data_dependency": 0.0, "other": 0.0}
        return {
            "data_dependency": 100.0 * self.data_stall_cycles / self.elapsed_cycles,
            "other": 100.0 * self.other_stall_cycles / self.elapsed_cycles,
        }


class KernelTimingModel:
    """Times compiled-kernel launches on a given architecture.

    The full profile of a launch is a pure function of the compiled
    kernel and the launch geometry, and the multiplexed VPs submit the
    same (kernel, geometry) pairs over and over, so :meth:`execute`
    memoizes its :class:`ExecutionProfile` per **(compiled kernel,
    launch)** with LRU eviction.  The cache key uses the compiled
    kernel's identity — each entry holds a strong reference, so the id
    cannot be recycled while the entry lives, and a hit additionally
    verifies the stored object *is* the requested one.  Models are
    per-architecture instances (one per :class:`HostGPU`), so entries
    can never leak across architectures.
    """

    def __init__(
        self,
        arch: GPUArchitecture,
        profile_cache_size: int = DEFAULT_PROFILE_CACHE_SIZE,
    ):
        if profile_cache_size < 1:
            raise ValueError(
                f"profile_cache_size must be positive, got {profile_cache_size}"
            )
        self.arch = arch
        self.profile_cache_size = profile_cache_size
        self._profile_cache: "OrderedDict[Tuple[int, LaunchConfig], Tuple[CompiledKernel, ExecutionProfile]]" = (
            OrderedDict()
        )
        # Content-addressed second tier, keyed by the same encoded key the
        # disk cache proves digest-safe.  The coalescer mints fresh merged
        # KernelIR objects every round, so the id-keyed first tier misses
        # on structurally-identical launches; this tier catches them.
        # Only consulted while vectorized timing is enabled, so disabling
        # vectimes restores the exact legacy lookup behavior.
        self._content_cache: "OrderedDict[str, ExecutionProfile]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    def __repr__(self) -> str:
        return f"KernelTimingModel({self.arch.name!r})"

    def clear_cache(self) -> None:
        self._profile_cache.clear()
        self._content_cache.clear()

    # -- component models ------------------------------------------------

    def issue_cycles(self, compiled: CompiledKernel, launch: LaunchConfig) -> float:
        """Elapsed issue cycles, quantized to full device waves (Eq. 9).

        The device executes the grid in waves of ``concurrent_blocks``
        resident blocks; a partially-filled wave costs a full wave — the
        paper's data-alignment observation ("the same execution time is
        obtained both for a grid of size 9 and a grid of size 16"), and
        the resource waste Kernel Coalescing reclaims by merging small
        grids into aligned ones.
        """
        per_thread = compiled.per_thread_mix(launch.context())
        return self._issue_cycles_from_mix(per_thread, launch)

    def _issue_cycles_from_mix(
        self, per_thread: InstructionMix, launch: LaunchConfig
    ) -> float:
        arch = self.arch
        warps_per_block = max(1, math.ceil(launch.block_size / arch.warp_size))
        wave_quantum = arch.concurrent_blocks(launch.block_size)
        blocks_per_sm_per_wave = max(1, wave_quantum // arch.sm_count)
        waves = math.ceil(launch.grid_size / wave_quantum)
        warp_cycles = sum(
            per_thread[t] * arch.warp_issue_cycles[t] for t in ALL_TYPES
        )
        return (
            waves
            * blocks_per_sm_per_wave
            * warps_per_block
            * warp_cycles
            / arch.schedulers_per_sm
        )

    def memory_cycles(self, compiled: CompiledKernel, launch: LaunchConfig) -> float:
        """Cycles to move the launch's DRAM traffic at peak bandwidth."""
        per_thread = compiled.per_thread_mix(launch.context())
        accesses = _accesses_from_mix(per_thread, launch.threads)
        return cache_model.memory_throughput_cycles(
            self.arch, compiled.ir.footprint, accesses
        )

    def data_stall_cycles(self, compiled: CompiledKernel, launch: LaunchConfig) -> float:
        """Upsilon[data]{K,H}: data-dependency stalls (latency + bandwidth).

        The per-thread mix is folded once and feeds both the access count
        and the issue-cycle input, the same sharing ``_compute_profile``
        does — the public component methods no longer re-derive it per
        sub-model.
        """
        per_thread = compiled.per_thread_mix(launch.context())
        accesses = _accesses_from_mix(per_thread, launch.threads)
        issue = self._issue_cycles_from_mix(per_thread, launch)
        return cache_model.data_stall_cycles(
            self.arch,
            compiled.ir.footprint,
            accesses,
            launch.block_size,
            launch.grid_size,
            issue,
        )

    # -- the full execution ----------------------------------------------

    def execute(self, compiled: CompiledKernel, launch: LaunchConfig) -> ExecutionProfile:
        """Model one launch and return its (memoized) execution profile."""
        self._check_arch(compiled)
        key = (id(compiled), launch)
        registry = _obs_metrics.REGISTRY
        memo_on = caches_enabled()
        if memo_on:
            entry = self._profile_cache.get(key)
            if entry is not None and entry[0] is compiled:
                self.cache_hits += 1
                if registry is not None:
                    registry.counter("cache.profile.hits").inc()
                self._profile_cache.move_to_end(key)
                return entry[1]
        self.cache_misses += 1
        if registry is not None:
            registry.counter("cache.profile.misses").inc()
        profile, content_key, store = self._miss_lookup(compiled, launch, memo_on)
        computed = profile is None
        if profile is None:
            profile = self._compute_profile(compiled, launch)
        if store is not None and content_key is not None and computed:
            store.put(content_key, profile)
        self._remember(key, compiled, profile, content_key, memo_on)
        return profile

    def execute_batch(
        self, items: Sequence[Tuple[CompiledKernel, LaunchConfig]]
    ) -> List[ExecutionProfile]:
        """Profiles for N launches, timing the memo misses as one batch.

        Lookup tiers, counters, and stored artifacts mirror calling
        :meth:`execute` item by item; with vectorized timing enabled, the
        profiles no cache can serve are computed by a single
        :func:`repro.gpu.vectimes.compute_profiles` array pass instead of
        N scalar walks.  With it disabled this *is* an ``execute`` loop —
        the scalar reference path behind the common interface.
        """
        if not _vectimes.vectimes_enabled():
            return [self.execute(compiled, launch) for compiled, launch in items]
        results: List[Optional[ExecutionProfile]] = [None] * len(items)
        pending: "OrderedDict[Tuple[int, LaunchConfig], List[int]]" = OrderedDict()
        pending_keys: Dict[Tuple[int, LaunchConfig], Optional[str]] = {}
        registry = _obs_metrics.REGISTRY
        memo_on = caches_enabled()
        for i, (compiled, launch) in enumerate(items):
            self._check_arch(compiled)
            key = (id(compiled), launch)
            if memo_on:
                entry = self._profile_cache.get(key)
                if entry is not None and entry[0] is compiled:
                    self.cache_hits += 1
                    if registry is not None:
                        registry.counter("cache.profile.hits").inc()
                    self._profile_cache.move_to_end(key)
                    results[i] = entry[1]
                    continue
            self.cache_misses += 1
            if registry is not None:
                registry.counter("cache.profile.misses").inc()
            slot = pending.get(key)
            if slot is not None and items[slot[0]][0] is compiled:
                # Duplicate within the batch: one compute serves both.
                slot.append(i)
                continue
            profile, content_key, store = self._miss_lookup(compiled, launch, memo_on)
            if profile is not None:
                self._remember(key, compiled, profile, content_key, memo_on)
                results[i] = profile
                continue
            pending[key] = [i]
            pending_keys[key] = content_key
        if pending:
            batch = [
                (items[slots[0]][0], items[slots[0]][1])
                for slots in pending.values()
            ]
            profiles = _vectimes.compute_profiles(self.arch, batch)
            store = _disk_cache.disk_cache()
            for (key, slots), profile in zip(pending.items(), profiles):
                compiled = items[slots[0]][0]
                content_key = pending_keys[key]
                if store is not None and content_key is not None:
                    store.put(content_key, profile)
                self._remember(key, compiled, profile, content_key, memo_on)
                for i in slots:
                    results[i] = profile
        out: List[ExecutionProfile] = []
        for profile_out in results:
            assert profile_out is not None
            out.append(profile_out)
        return out

    def profile_cached(self, compiled: CompiledKernel, launch: LaunchConfig) -> bool:
        """Whether the id-keyed memo holds this launch (a silent peek)."""
        entry = self._profile_cache.get((id(compiled), launch))
        return entry is not None and entry[0] is compiled

    # -- lookup tiers ------------------------------------------------------

    def _check_arch(self, compiled: CompiledKernel) -> None:
        if compiled.arch is not self.arch and compiled.arch.name != self.arch.name:
            raise ValueError(
                f"kernel compiled for {compiled.arch.name!r} cannot execute "
                f"on {self.arch.name!r}"
            )

    def _miss_lookup(
        self, compiled: CompiledKernel, launch: LaunchConfig, memo_on: bool
    ) -> Tuple[
        Optional[ExecutionProfile], Optional[str], Optional[_disk_cache.DiskCache]
    ]:
        """Content-memo and disk probes shared by execute/execute_batch.

        The profile is a pure function of the encoded content key, so a
        stored entry (in either tier) is bit-identical to recomputation;
        any unusable disk payload falls through to a recompute.  Returns
        ``(profile or None, content key or None, disk store)``.
        """
        store = _disk_cache.disk_cache()
        use_content = memo_on and _vectimes.vectimes_enabled()
        content_key: Optional[str] = None
        if use_content or store is not None:
            content_key = _disk_cache.profile_key(compiled, launch)
        if use_content and content_key is not None:
            cached = self._content_cache.get(content_key)
            if cached is not None:
                self._content_cache.move_to_end(content_key)
                registry = _obs_metrics.REGISTRY
                if registry is not None:
                    registry.counter("exec.vectimes_profile_reuse").inc()
                return cached, content_key, store
        if store is not None and content_key is not None:
            payload = store.get(content_key)
            if isinstance(payload, ExecutionProfile):
                return payload, content_key, store
        return None, content_key, store

    def _remember(
        self,
        key: Tuple[int, LaunchConfig],
        compiled: CompiledKernel,
        profile: ExecutionProfile,
        content_key: Optional[str],
        memo_on: bool,
    ) -> None:
        if not memo_on:
            return
        self._profile_cache[key] = (compiled, profile)
        if len(self._profile_cache) > self.profile_cache_size:
            self._profile_cache.popitem(last=False)
        if content_key is not None and _vectimes.vectimes_enabled():
            self._content_cache[content_key] = profile
            if len(self._content_cache) > self.profile_cache_size:
                self._content_cache.popitem(last=False)

    def _compute_profile(
        self, compiled: CompiledKernel, launch: LaunchConfig
    ) -> ExecutionProfile:
        """One launch's profile, with shared intermediates computed once.

        The per-thread mix, access count, and issue cycles feed several
        component models; deriving them once here (instead of once per
        public component method) keeps even a cache-miss execution cheap
        while producing bit-identical numbers — every component below
        applies the same pure formulas to the same inputs.
        """
        arch = self.arch
        per_thread = compiled.per_thread_mix(launch.context())
        threads = launch.threads
        sigma = {t: per_thread[t] * threads for t in ALL_TYPES}
        accesses = _accesses_from_mix(per_thread, threads)
        issue = self._issue_cycles_from_mix(per_thread, launch)
        memory = cache_model.memory_throughput_cycles(
            arch, compiled.ir.footprint, accesses
        )
        data_stalls = cache_model.data_stall_cycles(
            arch,
            compiled.ir.footprint,
            accesses,
            launch.block_size,
            launch.grid_size,
            issue,
        )
        other_stalls = OTHER_STALL_FRACTION * issue + PIPELINE_RAMP_CYCLES
        # Bandwidth saturation already surfaces inside the data-stall
        # model, so elapsed time is issue plus stalls.
        elapsed = issue + data_stalls + other_stalls

        behavior = cache_model.predict_behavior(
            compiled.ir.footprint, arch.cache, accesses
        )
        concurrent = arch.concurrent_blocks(launch.block_size)
        waves = max(1, math.ceil(launch.grid_size / concurrent))
        resident_blocks = min(launch.grid_size, concurrent)
        occupancy = min(
            1.0,
            resident_blocks * launch.block_size / arch.concurrent_threads,
        )

        return ExecutionProfile(
            kernel_name=compiled.name,
            arch_name=arch.name,
            launch=launch,
            sigma=sigma,
            issue_cycles=issue,
            memory_cycles=memory,
            data_stall_cycles=data_stalls,
            other_stall_cycles=other_stalls,
            elapsed_cycles=elapsed,
            time_ms=arch.cycles_to_ms(elapsed),
            cache_hits=behavior.hits,
            cache_misses=behavior.misses,
            cache_hit_probability=behavior.hit_probability,
            waves=waves,
            occupancy=occupancy,
        )

    def kernel_time_ms(self, compiled: CompiledKernel, launch: LaunchConfig) -> float:
        """Launch-to-completion time including driver launch overhead.

        Served from the profile memo when warm, so the dispatcher's
        expected-time estimate and the subsequent execution of the same
        job cost one model evaluation, not two.
        """
        profile = self.execute(compiled, launch)
        return self.arch.kernel_launch_overhead_ms + profile.time_ms

    # -- helpers -----------------------------------------------------------

    def _memory_accesses(self, compiled: CompiledKernel, launch: LaunchConfig) -> float:
        per_thread = compiled.per_thread_mix(launch.context())
        return _accesses_from_mix(per_thread, launch.threads)

    def _cache_behavior(
        self, compiled: CompiledKernel, launch: LaunchConfig
    ) -> cache_model.CacheBehavior:
        accesses = self._memory_accesses(compiled, launch)
        return cache_model.predict_behavior(
            compiled.ir.footprint, self.arch.cache, accesses
        )


def _accesses_from_mix(per_thread: InstructionMix, threads: int) -> float:
    """Total memory accesses of a launch from its per-thread mix."""
    return sum(per_thread[t] for t in MEMORY_TYPES) * threads
