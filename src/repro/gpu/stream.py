"""CUDA-style streams on the modelled device.

A stream is an in-order command queue: operations issued to one stream
execute in submission order, while operations in *different* streams may
overlap across the copy and compute engines.  SigmaVP "multiplexes the
host GPUs to execute the request from the VPs by using separate streams
for each VP" (paper Section 2), so streams are the unit of isolation
between virtual platforms on the host GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from ..sim import Environment, Event, Store
from .engines import Engine


@dataclass
class StreamCommand:
    """One in-order command: engine work plus a completion event."""

    engine: Engine
    label: str
    duration_ms: float
    completion: Event
    on_complete: Optional[Callable[[], None]] = None
    metadata: dict = field(default_factory=dict)


class GPUStream:
    """An in-order command queue bound to a device's engines."""

    def __init__(self, env: Environment, name: str):
        self.env = env
        self.name = name
        self._commands: Store = Store(env)
        self._last_completion: Optional[Event] = None
        self.issued = 0
        self.completed = 0
        env.process(self._pump(), label=f"stream:{name}/pump")

    def __repr__(self) -> str:
        return (
            f"<GPUStream {self.name} issued={self.issued} "
            f"completed={self.completed}>"
        )

    @property
    def pending(self) -> int:
        return self.issued - self.completed

    def enqueue(
        self,
        engine: Engine,
        label: str,
        duration_ms: float,
        on_complete: Optional[Callable[[], None]] = None,
        **metadata: Any,
    ) -> Event:
        """Append a command; returns the event firing at its completion."""
        completion = self.env.event()
        command = StreamCommand(
            engine=engine,
            label=label,
            duration_ms=duration_ms,
            completion=completion,
            on_complete=on_complete,
            metadata=dict(metadata),
        )
        self._commands.put(command)
        self._last_completion = completion
        self.issued += 1
        return completion

    def synchronize(self) -> Event:
        """Event firing once everything enqueued so far has completed.

        Mirrors ``cudaStreamSynchronize``: if the stream is already idle
        the event fires immediately.
        """
        if self._last_completion is None or self._last_completion.triggered:
            done = self.env.event()
            done.succeed()
            return done
        return self._last_completion

    def _pump(self) -> Generator[Event, Any, None]:
        while True:
            command: StreamCommand = yield self._commands.get()
            op = command.engine.submit(
                command.label,
                command.duration_ms,
                on_complete=command.on_complete,
                stream=self.name,
                **command.metadata,
            )
            yield op.done
            self.completed += 1
            command.completion.succeed(command.metadata)
