"""The host GPU device model.

:class:`HostGPU` ties together the architecture description, the timing
model, the dual engines, streams, and device memory into the facade the
SigmaVP job dispatcher drives.  Running a kernel on it produces the same
:class:`~repro.gpu.timing.ExecutionProfile` a vendor profiler would
report, which the time/power estimation layer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Union

from ..backend.registry import default_backend
from ..kernels.compiler import CompiledKernel, KernelCompiler
from ..kernels.ir import KernelIR
from ..kernels.launch import LaunchConfig
from ..sim import Environment, Event
from .arch import GPUArchitecture
from .engines import ComputeEngine, CopyEngine
from .memory import DeviceBuffer, DeviceMemoryAllocator
from .stream import GPUStream
from .timing import ExecutionProfile, KernelTimingModel

if TYPE_CHECKING:
    import numpy as np

    from ..backend.api import ExecutionBackend

#: Default device memory capacity: 2 GiB, matching the Quadro 4000 board.
DEFAULT_MEMORY_BYTES = 2 * 1024**3


@dataclass
class KernelRecord:
    """Bookkeeping for each kernel the device executed."""

    kernel_name: str
    stream: str
    profile: ExecutionProfile
    start_requested_ms: float
    completion_event: Event


class HostGPU:
    """A modelled GPU with copy/compute engines, streams, and memory."""

    def __init__(
        self,
        env: Environment,
        arch: GPUArchitecture,
        memory_bytes: int = DEFAULT_MEMORY_BYTES,
        compiler: Optional[KernelCompiler] = None,
        index: int = 0,
        backend: Optional["ExecutionBackend"] = None,
    ):
        self.env = env
        self.arch = arch
        self.index = index
        self.timing = KernelTimingModel(arch)
        # All functional data movement and allocation accounting routes
        # through the execution backend (process default when standalone).
        self.backend = backend if backend is not None else default_backend()
        self.memory = DeviceMemoryAllocator(memory_bytes, backend=self.backend)
        self.compiler = compiler or KernelCompiler()
        # Fermi-class Quadro boards advertise dual copy engines: host-to-
        # device and device-to-host transfers overlap with each other and
        # with compute, the three-stage pipeline Kernel Interleaving
        # exploits (paper Eq. 7).  Engine serving processes are labeled by
        # device index so a sharded environment can place each device's
        # service events on its own domain heap.
        self.h2d_engine = CopyEngine(
            env, name=f"{arch.name}/copy-h2d", plabel=f"gpu:{index}/copy-h2d"
        )
        self.d2h_engine = CopyEngine(
            env, name=f"{arch.name}/copy-d2h", plabel=f"gpu:{index}/copy-d2h"
        )
        self.compute_engine = ComputeEngine(
            env, name=f"{arch.name}/compute", plabel=f"gpu:{index}/compute"
        )
        self._streams: Dict[str, GPUStream] = {}
        self.kernel_log: List[KernelRecord] = []
        self.bytes_copied_h2d = 0
        self.bytes_copied_d2h = 0

    def __repr__(self) -> str:
        return (
            f"<HostGPU {self.arch.name} streams={len(self._streams)} "
            f"kernels={len(self.kernel_log)}>"
        )

    # -- streams ---------------------------------------------------------

    def create_stream(self, name: str) -> GPUStream:
        if name in self._streams:
            raise ValueError(f"stream {name!r} already exists")
        stream = GPUStream(self.env, name)
        self._streams[name] = stream
        return stream

    def stream(self, name: str) -> GPUStream:
        try:
            return self._streams[name]
        except KeyError:
            raise KeyError(f"no stream named {name!r}") from None

    @property
    def streams(self) -> List[GPUStream]:
        return list(self._streams.values())

    # -- memory ------------------------------------------------------------

    def malloc(self, size: int, owner: str = "") -> DeviceBuffer:
        return self.memory.allocate(size, owner=owner)

    def malloc_contiguous(
        self, sizes: Sequence[int], owner: str = ""
    ) -> List[DeviceBuffer]:
        return self.memory.allocate_contiguous(sizes, owner=owner)

    def free(self, buffer: DeviceBuffer) -> None:
        self.memory.free(buffer)

    # -- data movement -------------------------------------------------------

    def memcpy_h2d(
        self,
        stream: GPUStream,
        buffer: DeviceBuffer,
        host_data: Optional[np.ndarray] = None,
        nbytes: Optional[int] = None,
    ) -> Event:
        """Copy host data to ``buffer`` through the copy engine."""
        size = self._copy_size(buffer, host_data, nbytes)
        self.bytes_copied_h2d += size

        def apply() -> None:
            if host_data is not None:
                # Zero-copy backends return a read-only view, not a
                # defensive copy: submitted arrays are never mutated in
                # place, and the cleared writeable flag turns any
                # violation into a loud error.
                buffer.payload = self.backend.h2d(host_data)

        return stream.enqueue(
            self.h2d_engine,
            label=f"H2D:{buffer.owner or hex(buffer.address)}",
            duration_ms=self.arch.copy_time_ms(size),
            on_complete=apply,
            nbytes=size,
            direction="h2d",
        )

    def memcpy_d2h(
        self,
        stream: GPUStream,
        buffer: DeviceBuffer,
        nbytes: Optional[int] = None,
        sink: Optional[Callable[[Any], None]] = None,
    ) -> Event:
        """Copy ``buffer`` back to the host; ``sink`` receives the payload."""
        size = self._copy_size(buffer, None, nbytes)
        self.bytes_copied_d2h += size

        def apply() -> None:
            if sink is not None:
                sink(self.backend.d2h(buffer.payload))

        return stream.enqueue(
            self.d2h_engine,
            label=f"D2H:{buffer.owner or hex(buffer.address)}",
            duration_ms=self.arch.copy_time_ms(size),
            on_complete=apply,
            nbytes=size,
            direction="d2h",
        )

    @staticmethod
    def _copy_size(
        buffer: DeviceBuffer,
        host_data: Optional[np.ndarray],
        nbytes: Optional[int],
    ) -> int:
        if nbytes is not None:
            size = int(nbytes)
        elif host_data is not None:
            size = int(host_data.nbytes)
        else:
            size = buffer.size
        if size < 0:
            raise ValueError(f"negative copy size {size}")
        if size > buffer.size:
            raise ValueError(
                f"copy of {size} bytes overflows buffer of {buffer.size} bytes"
            )
        return size

    # -- kernels ---------------------------------------------------------------

    def launch_kernel(
        self,
        stream: GPUStream,
        kernel: Union[KernelIR, CompiledKernel],
        launch: LaunchConfig,
        apply: Optional[Callable[[], None]] = None,
    ) -> Event:
        """Launch a kernel on ``stream``; returns its completion event.

        ``apply`` is the functional effect (numpy transformation of the
        involved buffers), executed at modelled completion time.
        """
        compiled = self._compiled(kernel)
        profile = self.timing.execute(compiled, launch)
        duration = self.arch.kernel_launch_overhead_ms + profile.time_ms

        completion = stream.enqueue(
            self.compute_engine,
            label=f"KERNEL:{compiled.name}",
            duration_ms=duration,
            on_complete=apply,
            kernel=compiled.name,
            profile=profile,
        )
        self.kernel_log.append(
            KernelRecord(
                kernel_name=compiled.name,
                stream=stream.name,
                profile=profile,
                start_requested_ms=self.env.now,
                completion_event=completion,
            )
        )
        return completion

    def _compiled(self, kernel: Union[KernelIR, CompiledKernel]) -> CompiledKernel:
        if isinstance(kernel, CompiledKernel):
            if kernel.arch.name != self.arch.name:
                raise ValueError(
                    f"kernel compiled for {kernel.arch.name!r} cannot run on "
                    f"{self.arch.name!r}"
                )
            return kernel
        return self.compiler.compile(kernel, self.arch)

    # -- introspection ------------------------------------------------------

    def profiles_for(self, kernel_name: str) -> List[ExecutionProfile]:
        return [r.profile for r in self.kernel_log if r.kernel_name == kernel_name]

    def last_profile(self) -> Optional[ExecutionProfile]:
        if not self.kernel_log:
            return None
        return self.kernel_log[-1].profile
