"""Host GPU hardware models: architectures, engines, memory, timing."""

from .arch import (
    CATALOG,
    CacheGeometry,
    GPUArchitecture,
    GRID_K520,
    QUADRO_4000,
    TEGRA_K1,
    get_architecture,
)
from .cache import CacheBehavior, hit_probability, predict_behavior
from .device import HostGPU
from .engines import ComputeEngine, CopyEngine, Engine, EngineOp, TimelineEntry
from .memory import DeviceBuffer, DeviceMemoryAllocator, OutOfDeviceMemory
from .stream import GPUStream
from .timing import ExecutionProfile, KernelTimingModel
from .vectimes import (
    compute_profiles,
    set_vectimes_enabled,
    vectimes_enabled,
    vectimes_scope,
)

__all__ = [
    "CATALOG",
    "CacheBehavior",
    "CacheGeometry",
    "ComputeEngine",
    "CopyEngine",
    "DeviceBuffer",
    "DeviceMemoryAllocator",
    "Engine",
    "EngineOp",
    "ExecutionProfile",
    "GPUArchitecture",
    "GPUStream",
    "GRID_K520",
    "HostGPU",
    "KernelTimingModel",
    "OutOfDeviceMemory",
    "QUADRO_4000",
    "TEGRA_K1",
    "TimelineEntry",
    "compute_profiles",
    "get_architecture",
    "hit_probability",
    "predict_behavior",
    "set_vectimes_enabled",
    "vectimes_enabled",
    "vectimes_scope",
]
