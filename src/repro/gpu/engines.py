"""The GPU's two hardware engines: copy and compute.

"GPU architectures feature two types of engines that can operate in
parallel: a Compute Engine and a Copy Engine" (paper Section 3).  Kernel
Interleaving exists precisely because these two engines run concurrently
but each serves its own FIFO: a poor submission order leaves one engine
idle while the other works.

Each engine is a non-preemptive FIFO server over timed operations.  It
records a busy timeline so experiments and tests can measure utilization
and verify overlap (the mechanism behind Fig. 3's before/after diagrams).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional, Tuple

from ..obs import metrics as _obs_metrics
from ..obs import tracer as _obs_trace
from ..sim import Environment, Event, Store


@dataclass
class EngineOp:
    """One timed unit of engine work.

    ``done`` fires when the engine finishes; ``on_complete`` (if given)
    runs at completion time — the functional layer uses it to apply the
    numpy effect of the operation.
    """

    label: str
    duration_ms: float
    done: Event
    on_complete: Optional[Callable[[], None]] = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration_ms < 0:
            raise ValueError(f"negative duration for {self.label!r}")


@dataclass(frozen=True)
class TimelineEntry:
    """A completed span of engine work."""

    label: str
    start_ms: float
    end_ms: float

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


class Engine:
    """A non-preemptive FIFO engine."""

    def __init__(
        self, env: Environment, name: str, plabel: Optional[str] = None
    ):
        self.env = env
        self.name = name
        self._queue: Store = Store(env)
        self.timeline: List[TimelineEntry] = []
        self.busy_ms = 0.0
        # ``plabel`` identifies the serving process for error reporting
        # and domain routing (e.g. ``"gpu:1/compute"``); the engine name
        # itself stays arch-scoped for trace lanes.
        self._process = env.process(self._serve(), label=plabel or f"engine:{name}")

    def __repr__(self) -> str:
        return f"<Engine {self.name} queued={len(self._queue)} busy={self.busy_ms:.3f}ms>"

    @property
    def queued(self) -> int:
        return len(self._queue)

    def submit(
        self,
        label: str,
        duration_ms: float,
        on_complete: Optional[Callable[[], None]] = None,
        **metadata: Any,
    ) -> EngineOp:
        """Enqueue work; returns the op whose ``done`` event fires at finish."""
        op = EngineOp(
            label=label,
            duration_ms=duration_ms,
            done=self.env.event(),
            on_complete=on_complete,
            metadata=dict(metadata),
        )
        self._queue.put(op)
        return op

    def _serve(self) -> Generator[Event, Any, None]:
        while True:
            op: EngineOp = yield self._queue.get()
            start = self.env.now
            yield self.env.timeout(op.duration_ms)
            end = self.env.now
            self.timeline.append(TimelineEntry(op.label, start, end))
            self.busy_ms += end - start
            tracer = _obs_trace.TRACER
            if tracer is not None:
                tracer.span(
                    self.name, op.label, start, end,
                    cat="engine", args=op.metadata,
                )
            registry = _obs_metrics.REGISTRY
            if registry is not None:
                registry.histogram("engine.op_ms").observe(end - start)
            if op.on_complete is not None:
                op.on_complete()
            op.done.succeed(op)

    def utilization(self, until_ms: Optional[float] = None) -> float:
        """Busy fraction of the engine up to ``until_ms`` (default: now)."""
        horizon = self.env.now if until_ms is None else until_ms
        if horizon <= 0:
            return 0.0
        busy = sum(
            max(0.0, min(entry.end_ms, horizon) - entry.start_ms)
            for entry in self.timeline
            if entry.start_ms < horizon
        )
        return busy / horizon

    def idle_gaps(self) -> List[Tuple[float, float]]:
        """(start, end) idle windows between completed operations."""
        gaps: List[Tuple[float, float]] = []
        cursor = 0.0
        for entry in sorted(self.timeline, key=lambda e: e.start_ms):
            if entry.start_ms > cursor:
                gaps.append((cursor, entry.start_ms))
            cursor = max(cursor, entry.end_ms)
        return gaps


class CopyEngine(Engine):
    """The DMA engine moving data between host and device memory."""

    def __init__(
        self,
        env: Environment,
        name: str = "copy-engine",
        plabel: Optional[str] = None,
    ):
        super().__init__(env, name, plabel=plabel)


class ComputeEngine(Engine):
    """The SM array executing kernels, serialized at device level."""

    def __init__(
        self,
        env: Environment,
        name: str = "compute-engine",
        plabel: Optional[str] = None,
    ):
        super().__init__(env, name, plabel=plabel)
