"""Vectorized batched timing & estimation engine.

The reference models in :mod:`repro.gpu.timing`, :mod:`repro.gpu.cache`,
and :mod:`repro.core.estimation` evaluate the paper's cost model — the
Eq. (1) instruction-mix fold, the Eq. (9) wave-quantized issue model, the
probabilistic cache model, and the Eq. (2)-(6) estimators — once per
launch in pure Python.  This module lowers compiled-kernel mixes, launch
geometries, and architecture parameters into packed numpy arrays and
computes **N launches in one set of array ops**.

Bit-identical by construction
-----------------------------
The vectorized path is required to produce the *same floats* as the
scalar reference (pinned scenario digests depend on it), so every formula
here replays the scalar evaluation order exactly:

* **Left-fold accumulation.**  Python's ``sum()`` and the
  ``InstructionMix.combined`` chain are left folds starting from zero;
  the array twins accumulate ``acc = acc + column`` in the same order
  instead of using ``np.dot``/``np.sum`` (whose pairwise summation
  associates differently).
* **Integer geometry in int64.**  Grid/block arithmetic (``//``,
  ``min``/``max``, ceiling division) happens in int64 and converts to
  float64 only where the scalar code promotes int to float; conversion
  is exact below 2**53.  ``-(-a // b)`` equals ``math.ceil(a / b)`` for
  the magnitudes the models see (products stay far below 2**52, where
  float division cannot cross an integer boundary).
* **Scalar constants stay Python floats.**  Derived constants such as
  ``bytes_per_cycle`` are computed by the same Python expressions the
  scalar model uses, then broadcast — never re-derived in numpy.
* **Per-kernel cache probability.**  ``cache_model.hit_probability`` is
  evaluated once per kernel group by calling the scalar function itself.
* **Materialization through builtins.**  Results are converted with
  ``float()``/``int()`` so no ``np.float64`` leaks into downstream
  arithmetic or the canonical-JSON digests.

The scalar implementations remain the reference; the property-based
conformance suite (``tests/test_vectimes_conformance.py``) asserts exact
equality between the two paths.

Toggling
--------
Vectorized timing is on by default.  It can be disabled through the
``REPRO_VECTIMES`` environment variable (``0``/``false``), the
``--no-vectimes`` CLI flag, ``SchedulerConfig(vectimes=False)``, or the
:func:`vectimes_scope` context manager.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Sequence,
    Tuple,
)

import numpy as np

from ..caching import register_cache_clearer
from ..kernels.compiler import CompiledKernel
from ..kernels.ir import ALL_TYPES, InstructionType, LaunchContext, MemoryFootprint
from ..kernels.launch import LaunchConfig
from ..obs import metrics as _obs_metrics
from . import cache as cache_model
from .arch import GPUArchitecture

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .timing import ExecutionProfile

#: Environment switch for the vectorized timing path (default: enabled).
VECTIMES_ENV_VAR = "REPRO_VECTIMES"

#: Column indices of the memory-access types in the Eq. (1) ordering.
_LOAD_COL = ALL_TYPES.index(InstructionType.LOAD)
_STORE_COL = ALL_TYPES.index(InstructionType.STORE)


def vectimes_from_env() -> bool:
    """Whether ``REPRO_VECTIMES`` leaves the vectorized path enabled."""
    return os.environ.get(VECTIMES_ENV_VAR, "1").lower() not in ("0", "", "false")


_ENABLED: bool = vectimes_from_env()


def vectimes_enabled() -> bool:
    """Whether batch call sites route through the vectorized engine."""
    return _ENABLED


def set_vectimes_enabled(enabled: bool) -> bool:
    """Switch the vectorized path on/off; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def vectimes_scope(enabled: bool) -> Iterator[None]:
    """Temporarily force the vectorized path on or off."""
    previous = set_vectimes_enabled(enabled)
    try:
        yield
    finally:
        set_vectimes_enabled(previous)


# ---------------------------------------------------------------------------
# Packed parameter caches
# ---------------------------------------------------------------------------


class _ArchPack:
    """One architecture's model parameters, packed for array evaluation."""

    __slots__ = (
        "arch",
        "warp_tau",
        "device_tau",
        "energy_nj",
        "sm_count",
        "schedulers_per_sm",
        "schedulers_total",
        "warp_size",
        "max_threads_per_sm",
        "max_blocks_per_sm",
        "concurrent_threads",
        "clock_khz",
        "line_bytes",
        "miss_penalty_cycles",
        "bytes_per_cycle",
    )

    def __init__(self, arch: GPUArchitecture) -> None:
        self.arch = arch
        self.warp_tau = np.array(
            [arch.warp_issue_cycles[t] for t in ALL_TYPES], dtype=np.float64
        )
        self.device_tau = np.array(
            [arch.device_issue_cycles(t) for t in ALL_TYPES], dtype=np.float64
        )
        self.energy_nj = np.array(
            [arch.instruction_energy_nj[t] for t in ALL_TYPES], dtype=np.float64
        )
        self.sm_count = arch.sm_count
        self.schedulers_per_sm = arch.schedulers_per_sm
        self.schedulers_total = arch.sm_count * arch.schedulers_per_sm
        self.warp_size = arch.warp_size
        self.max_threads_per_sm = arch.max_threads_per_sm
        self.max_blocks_per_sm = arch.max_blocks_per_sm
        self.concurrent_threads = arch.concurrent_threads
        # Python-float scalars, derived by the same expressions the scalar
        # model evaluates (not re-derived in numpy).
        self.clock_khz = arch.clock_khz
        self.line_bytes = arch.cache.line_bytes
        self.miss_penalty_cycles = arch.cache.miss_penalty_cycles
        self.bytes_per_cycle = arch.memory_bandwidth_gbps / arch.clock_mhz * 1e3


class _KernelPack:
    """One compiled kernel's static per-block mixes as a (B, 7) matrix."""

    __slots__ = ("compiled", "mix_matrix")

    def __init__(self, compiled: CompiledKernel) -> None:
        self.compiled = compiled
        self.mix_matrix = np.array(
            [[block.mix[t] for t in ALL_TYPES] for block in compiled.blocks],
            dtype=np.float64,
        )


#: Bound on the pack memos; each entry keeps a strong reference to its
#: source object, so ids cannot be recycled while an entry lives, and a
#: hit additionally verifies the stored object *is* the requested one.
_ARCH_PACK_LIMIT = 64
_KERNEL_PACK_LIMIT = 4096

_ARCH_PACKS: "OrderedDict[int, _ArchPack]" = OrderedDict()
_KERNEL_PACKS: "OrderedDict[int, _KernelPack]" = OrderedDict()


def _arch_pack(arch: GPUArchitecture) -> _ArchPack:
    key = id(arch)
    pack = _ARCH_PACKS.get(key)
    if pack is not None and pack.arch is arch:
        _ARCH_PACKS.move_to_end(key)
        return pack
    pack = _ArchPack(arch)
    _ARCH_PACKS[key] = pack
    if len(_ARCH_PACKS) > _ARCH_PACK_LIMIT:
        _ARCH_PACKS.popitem(last=False)
    return pack


def _kernel_pack(compiled: CompiledKernel) -> _KernelPack:
    key = id(compiled)
    pack = _KERNEL_PACKS.get(key)
    if pack is not None and pack.compiled is compiled:
        _KERNEL_PACKS.move_to_end(key)
        return pack
    pack = _KernelPack(compiled)
    _KERNEL_PACKS[key] = pack
    if len(_KERNEL_PACKS) > _KERNEL_PACK_LIMIT:
        _KERNEL_PACKS.popitem(last=False)
    return pack


def clear_packs() -> None:
    """Drop the packed-parameter memos (registered with the cache layer)."""
    _ARCH_PACKS.clear()
    _KERNEL_PACKS.clear()


register_cache_clearer(clear_packs)


# ---------------------------------------------------------------------------
# Array kernels (each the exact twin of one scalar formula)
# ---------------------------------------------------------------------------


def _ceil_div(numerator: np.ndarray, denominator: "np.ndarray | int") -> np.ndarray:
    """Int64 ceiling division; equals ``math.ceil(a / b)`` in-range."""
    return -(-numerator // denominator)


def _fold(matrix: np.ndarray, coefficients: np.ndarray) -> np.ndarray:
    """Left fold of ``sum(matrix[:, j] * coefficients[j])`` over columns.

    Mirrors the scalar generator-``sum()`` exactly: accumulate one term
    at a time, left to right, starting from zero.
    """
    acc = np.zeros(matrix.shape[0], dtype=np.float64)
    for j in range(matrix.shape[1]):
        acc = acc + matrix[:, j] * float(coefficients[j])
    return acc


def column_sum(matrix: np.ndarray) -> np.ndarray:
    """Left fold of ``sum(matrix[:, j])`` over columns (no coefficients)."""
    acc = np.zeros(matrix.shape[0], dtype=np.float64)
    for j in range(matrix.shape[1]):
        acc = acc + matrix[:, j]
    return acc


def per_thread_matrix(
    compiled: CompiledKernel, ctxs: Sequence[LaunchContext]
) -> np.ndarray:
    """Per-thread dynamic mixes for N launch contexts as an (N, 7) array.

    Twin of ``CompiledKernel.per_thread_mix``: a left fold of
    ``mix[b] * trips[b]`` over program blocks, with trip counts evaluated
    by the blocks' own ``trip_count`` (constant trips are broadcast; rule
    trips are evaluated per context, preserving their validation).
    """
    n = len(ctxs)
    pack = _kernel_pack(compiled)
    n_blocks = len(compiled.blocks)
    if n == 0:
        return np.zeros((0, len(ALL_TYPES)), dtype=np.float64)
    trips = np.empty((n, n_blocks), dtype=np.float64)
    for b, block in enumerate(compiled.blocks):
        source = block.source
        if callable(source.trips):
            column = trips[:, b]
            for i, ctx in enumerate(ctxs):
                column[i] = source.trip_count(ctx)
        else:
            trips[:, b] = source.trip_count(ctxs[0])
    acc = np.zeros((n, len(ALL_TYPES)), dtype=np.float64)
    mix = pack.mix_matrix
    for b in range(n_blocks):
        acc = acc + mix[b][None, :] * trips[:, b][:, None]
    return acc


def sigma_matrix(
    compiled: CompiledKernel, launches: Sequence[LaunchConfig]
) -> np.ndarray:
    """Eq. (1) total dynamic counts sigma{K_i,A} as an (N, 7) array."""
    n = len(launches)
    per_thread = per_thread_matrix(compiled, [l.context() for l in launches])
    threads = np.fromiter(
        (l.threads for l in launches), dtype=np.int64, count=n
    ).astype(np.float64)
    return per_thread * threads[:, None]


def _per_sm_blocks(pack: _ArchPack, block: np.ndarray) -> np.ndarray:
    """Twin of the per-SM block residency term of ``concurrent_blocks``."""
    return np.minimum(
        pack.max_blocks_per_sm,
        np.maximum(1, pack.max_threads_per_sm // block),
    )


def _issue_cycles(
    pack: _ArchPack, per_thread: np.ndarray, grid: np.ndarray, block: np.ndarray
) -> np.ndarray:
    """Twin of ``KernelTimingModel._issue_cycles_from_mix`` (Eq. 9)."""
    warps_per_block = np.maximum(1, _ceil_div(block, pack.warp_size))
    wave_quantum = pack.sm_count * _per_sm_blocks(pack, block)
    blocks_per_sm_per_wave = np.maximum(1, wave_quantum // pack.sm_count)
    waves = _ceil_div(grid, wave_quantum)
    warp_cycles = _fold(per_thread, pack.warp_tau)
    product = waves * blocks_per_sm_per_wave * warps_per_block
    return (
        product.astype(np.float64)
        * warp_cycles
        / float(pack.schedulers_per_sm)
    )


def _data_stall_arrays(
    pack: _ArchPack,
    p: "np.ndarray | float",
    accesses: np.ndarray,
    block: np.ndarray,
    grid: np.ndarray,
    issue_cycles: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Twins of the ``cache_model`` stall helpers for N launches.

    Returns ``(data_stalls, throughput, hits, misses)`` — the data-stall
    model's full Upsilon[data] plus the DRAM-throughput cycles and the
    predicted hit/miss counts, matching ``data_stall_cycles``,
    ``memory_throughput_cycles``, and ``predict_behavior``.
    """
    hits = accesses * p
    misses = accesses - hits
    # latency_hiding_fraction
    resident_blocks_per_sm = _per_sm_blocks(pack, block)
    resident_blocks_per_sm = np.minimum(
        resident_blocks_per_sm, np.maximum(1, _ceil_div(grid, pack.sm_count))
    )
    resident_warps = resident_blocks_per_sm * np.maximum(
        1, block // pack.warp_size
    )
    warps_per_scheduler = resident_warps.astype(np.float64) / float(
        pack.schedulers_per_sm
    )
    hiding = np.minimum(
        cache_model.MAX_HIDING,
        warps_per_scheduler / cache_model.HIDING_SATURATION_WARPS,
    )
    # exposed_stall_cycles
    misses_per_scheduler = misses / float(pack.schedulers_total)
    exposed = (
        misses_per_scheduler * pack.miss_penalty_cycles * (1.0 - hiding)
    )
    # memory_throughput_cycles
    throughput = (misses * pack.line_bytes) / pack.bytes_per_cycle
    # data_stall_cycles
    bandwidth = np.maximum(
        0.0, throughput - cache_model.BANDWIDTH_OVERLAP * issue_cycles
    )
    data_stalls = np.maximum(exposed, bandwidth)
    return data_stalls, throughput, hits, misses


def ideal_cycles_array(arch: GPUArchitecture, sigma: np.ndarray) -> np.ndarray:
    """Eq. (3) ideal cycles C^P for N launches (twin of ``ideal_cycles``)."""
    return _fold(sigma, _arch_pack(arch).device_tau)


def predicted_data_stalls_array(
    arch: GPUArchitecture,
    footprint: MemoryFootprint,
    sigma: np.ndarray,
    block: np.ndarray,
    grid: np.ndarray,
    issue_cycles: np.ndarray,
) -> np.ndarray:
    """Twin of ``ExecutionAnalyzer.predicted_data_stalls`` for N launches.

    Note the access count here is ``sigma[Ld] + sigma[St]`` (sums of the
    already-scaled totals) — the estimator's evaluation order, distinct
    from the profile path's ``(per_thread[Ld] + per_thread[St]) * threads``.
    """
    pack = _arch_pack(arch)
    accesses = sigma[:, _LOAD_COL] + sigma[:, _STORE_COL]
    p = cache_model.hit_probability(footprint, arch.cache)
    data_stalls, _, _, _ = _data_stall_arrays(
        pack, p, accesses, block, grid, issue_cycles
    )
    return data_stalls


# ---------------------------------------------------------------------------
# The batched profile engine
# ---------------------------------------------------------------------------


def compute_profiles(
    arch: GPUArchitecture,
    items: Sequence[Tuple[CompiledKernel, LaunchConfig]],
) -> "List[ExecutionProfile]":
    """Execution profiles for N ``(compiled, launch)`` pairs in one pass.

    Bit-identical twin of ``KernelTimingModel._compute_profile`` applied
    to every item: mixes are folded per kernel group, geometry runs in
    one int64/float64 array program over the whole batch, and the cache
    probability is the scalar model's own value per kernel.
    """
    from .timing import (
        OTHER_STALL_FRACTION,
        PIPELINE_RAMP_CYCLES,
        ExecutionProfile,
    )

    n = len(items)
    if n == 0:
        return []
    pack = _arch_pack(arch)
    grid = np.fromiter(
        (launch.grid_size for _, launch in items), dtype=np.int64, count=n
    )
    block = np.fromiter(
        (launch.block_size for _, launch in items), dtype=np.int64, count=n
    )
    threads_f = (grid * block).astype(np.float64)

    per_thread = np.empty((n, len(ALL_TYPES)), dtype=np.float64)
    p_arr = np.empty(n, dtype=np.float64)
    groups: "OrderedDict[int, List[int]]" = OrderedDict()
    for i, (compiled, _) in enumerate(items):
        groups.setdefault(id(compiled), []).append(i)
    for indices in groups.values():
        compiled = items[indices[0]][0]
        ctxs = [items[i][1].context() for i in indices]
        index = np.asarray(indices, dtype=np.intp)
        per_thread[index] = per_thread_matrix(compiled, ctxs)
        p_arr[index] = cache_model.hit_probability(
            compiled.ir.footprint, arch.cache
        )

    sigma = per_thread * threads_f[:, None]
    accesses = (per_thread[:, _LOAD_COL] + per_thread[:, _STORE_COL]) * threads_f
    issue = _issue_cycles(pack, per_thread, grid, block)
    data_stalls, throughput, hits, misses = _data_stall_arrays(
        pack, p_arr, accesses, block, grid, issue
    )
    other_stalls = OTHER_STALL_FRACTION * issue + PIPELINE_RAMP_CYCLES
    elapsed = issue + data_stalls + other_stalls
    time_ms = elapsed / pack.clock_khz

    concurrent = pack.sm_count * _per_sm_blocks(pack, block)
    waves = np.maximum(1, _ceil_div(grid, concurrent))
    resident_blocks = np.minimum(grid, concurrent)
    occupancy = np.minimum(
        1.0,
        (resident_blocks * block).astype(np.float64)
        / float(pack.concurrent_threads),
    )

    profiles: "List[ExecutionProfile]" = []
    for i, (compiled, launch) in enumerate(items):
        sigma_i: Dict[InstructionType, float] = {
            t: float(sigma[i, j]) for j, t in enumerate(ALL_TYPES)
        }
        profiles.append(
            ExecutionProfile(
                kernel_name=compiled.name,
                arch_name=arch.name,
                launch=launch,
                sigma=sigma_i,
                issue_cycles=float(issue[i]),
                memory_cycles=float(throughput[i]),
                data_stall_cycles=float(data_stalls[i]),
                other_stall_cycles=float(other_stalls[i]),
                elapsed_cycles=float(elapsed[i]),
                time_ms=float(time_ms[i]),
                cache_hits=float(hits[i]),
                cache_misses=float(misses[i]),
                cache_hit_probability=float(p_arr[i]),
                waves=int(waves[i]),
                occupancy=float(occupancy[i]),
            )
        )
    registry = _obs_metrics.REGISTRY
    if registry is not None:
        registry.counter("exec.vectimes_batches").inc()
        registry.counter("exec.vectimes_launches").inc(n)
    return profiles
