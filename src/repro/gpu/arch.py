"""GPU architecture descriptions.

The paper's experiments use three physical GPUs: two host GPUs (NVIDIA
Quadro 4000, a Fermi part, and Grid K520, a Kepler part) and one embedded
target GPU (the Tegra K1's GK20A Kepler SMX).  This module captures each
as a :class:`GPUArchitecture` record whose parameters come from public
spec sheets, with microarchitectural details (issue costs, miss penalties)
set to spec-plausible values; they are the knobs the timing model of
:mod:`repro.gpu.timing` consumes.

Conventions used throughout the project:

* time is in **milliseconds**, bandwidth in **GB/s**, clocks in **MHz**;
* ``warp_issue_cycles[i]`` is the number of cycles one warp scheduler
  spends to issue one warp-instruction of type ``i`` (reciprocal
  throughput — e.g. 12 for FP64 on Kepler's 1/24-rate consumer parts);
* "elapsed cycles" means wall-clock cycles of the GPU clock domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, Mapping

from ..kernels.ir import ALL_TYPES, InstructionType


@dataclass(frozen=True)
class CacheGeometry:
    """Last-level data cache geometry used by the probabilistic model."""

    size_kb: int
    line_bytes: int
    associativity: int
    miss_penalty_cycles: float

    def __post_init__(self) -> None:
        if self.size_kb <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise ValueError("cache geometry values must be positive")
        if self.miss_penalty_cycles < 0:
            raise ValueError("miss penalty must be non-negative")

    @property
    def size_bytes(self) -> int:
        return self.size_kb * 1024


def _freeze(mapping: Mapping[InstructionType, float]) -> Mapping[InstructionType, float]:
    complete = {t: float(mapping.get(t, 1.0)) for t in ALL_TYPES}
    return MappingProxyType(complete)


@dataclass(frozen=True)
class GPUArchitecture:
    """A complete architectural description of one GPU."""

    name: str
    sm_count: int
    cores_per_sm: int
    schedulers_per_sm: int
    clock_mhz: float
    max_threads_per_sm: int
    max_blocks_per_sm: int
    warp_size: int
    warp_issue_cycles: Mapping[InstructionType, float]
    cache: CacheGeometry
    memory_bandwidth_gbps: float
    copy_bandwidth_gbps: float
    copy_latency_ms: float
    kernel_launch_overhead_ms: float
    static_power_w: float
    instruction_energy_nj: Mapping[InstructionType, float]
    #: Energy of one DRAM line fill (nJ).  Dissipated by real hardware
    #: (and therefore present in *measured* power) but not part of the
    #: paper's per-instruction power model Eq. (6) — the main source of
    #: the estimate-vs-measurement gap in Fig. 13.
    dram_access_energy_nj: float = 15.0
    compile_expansion: Mapping[InstructionType, float] = field(
        default_factory=lambda: _freeze({})
    )

    def __post_init__(self) -> None:
        if self.sm_count <= 0 or self.cores_per_sm <= 0 or self.schedulers_per_sm <= 0:
            raise ValueError(f"{self.name}: SM parameters must be positive")
        if self.clock_mhz <= 0:
            raise ValueError(f"{self.name}: clock must be positive")
        if self.warp_size <= 0:
            raise ValueError(f"{self.name}: warp size must be positive")
        object.__setattr__(self, "warp_issue_cycles", _freeze(self.warp_issue_cycles))
        object.__setattr__(
            self, "instruction_energy_nj", _freeze(self.instruction_energy_nj)
        )
        object.__setattr__(self, "compile_expansion", _freeze(self.compile_expansion))

    # -- derived quantities ---------------------------------------------

    @property
    def total_cores(self) -> int:
        return self.sm_count * self.cores_per_sm

    @property
    def clock_khz(self) -> float:
        """Cycles per millisecond."""
        return self.clock_mhz * 1e3

    @property
    def concurrent_threads(self) -> int:
        """Maximum threads resident on the device at once.

        This is the paper's alignment unit lambda in Eq. (9): a launch
        whose thread count is not a multiple of it wastes part of its
        final wave.
        """
        return self.sm_count * self.max_threads_per_sm

    @property
    def ipc_peak(self) -> float:
        """Peak thread-instructions per elapsed cycle (Eq. 2's IPC_max).

        Each scheduler can issue one warp (``warp_size`` thread
        instructions) per cycle at best-case reciprocal throughput 1.
        """
        return self.sm_count * self.schedulers_per_sm * self.warp_size

    def device_issue_cycles(self, itype: InstructionType) -> float:
        """Elapsed cycles per *thread* instruction of ``itype`` at full
        occupancy — the device-level interpretation of the paper's
        per-type latency tau_{i,T} in Eq. (3)."""
        return self.warp_issue_cycles[itype] / (
            self.sm_count * self.schedulers_per_sm * self.warp_size
        )

    def concurrent_blocks(self, block_size: int) -> int:
        """How many thread blocks of ``block_size`` fit on the device."""
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        per_sm = min(
            self.max_blocks_per_sm,
            max(1, self.max_threads_per_sm // block_size),
        )
        return self.sm_count * per_sm

    def cycles_to_ms(self, cycles: float) -> float:
        return cycles / self.clock_khz

    def ms_to_cycles(self, ms: float) -> float:
        return ms * self.clock_khz

    def copy_time_ms(self, num_bytes: int) -> float:
        """Copy-engine transfer time for ``num_bytes`` over the host link."""
        if num_bytes < 0:
            raise ValueError(f"negative byte count {num_bytes}")
        if num_bytes == 0:
            return 0.0
        gb = num_bytes / 1e9
        return self.copy_latency_ms + (gb / self.copy_bandwidth_gbps) * 1e3


# ---------------------------------------------------------------------------
# Catalog.  Parameters from public spec sheets; issue costs follow the
# documented per-generation throughput ratios (e.g. Quadro 4000 is a
# half-rate FP64 Fermi; GK104/GK20A Keplers are 1/24-rate FP64).
# ---------------------------------------------------------------------------

QUADRO_4000 = GPUArchitecture(
    name="Quadro 4000",
    sm_count=8,
    cores_per_sm=32,
    schedulers_per_sm=2,
    clock_mhz=950.0,
    # Effective resident threads per SM.  The architectural limit is
    # 1536, but register pressure holds real occupancy at 1024, which is
    # what the paper's own alignment data shows: equal times for grids 9
    # and 16 at 512-thread blocks imply lambda = 16 * 512 = 8192 threads
    # device-wide (Section 5, Fig. 10b).
    max_threads_per_sm=1024,
    max_blocks_per_sm=8,
    warp_size=32,
    warp_issue_cycles={
        InstructionType.FP32: 1.0,
        InstructionType.FP64: 2.0,
        InstructionType.INT: 1.0,
        InstructionType.BIT: 1.0,
        InstructionType.BRANCH: 2.0,
        InstructionType.LOAD: 2.0,
        InstructionType.STORE: 2.0,
    },
    cache=CacheGeometry(size_kb=512, line_bytes=128, associativity=16,
                        miss_penalty_cycles=400.0),
    memory_bandwidth_gbps=89.6,
    copy_bandwidth_gbps=4.0,
    copy_latency_ms=0.015,
    kernel_launch_overhead_ms=0.012,
    static_power_w=32.0,
    dram_access_energy_nj=28.0,
    instruction_energy_nj={
        InstructionType.FP32: 0.25,
        InstructionType.FP64: 0.60,
        InstructionType.INT: 0.15,
        InstructionType.BIT: 0.10,
        InstructionType.BRANCH: 0.12,
        InstructionType.LOAD: 0.45,
        InstructionType.STORE: 0.45,
    },
)

GRID_K520 = GPUArchitecture(
    # One of the two GK104 GPUs on the Grid K520 board.
    name="Grid K520",
    sm_count=8,
    cores_per_sm=192,
    schedulers_per_sm=4,
    clock_mhz=800.0,
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    warp_size=32,
    warp_issue_cycles={
        InstructionType.FP32: 0.5,
        InstructionType.FP64: 12.0,
        InstructionType.INT: 0.75,
        InstructionType.BIT: 0.75,
        InstructionType.BRANCH: 1.0,
        InstructionType.LOAD: 1.0,
        InstructionType.STORE: 1.0,
    },
    cache=CacheGeometry(size_kb=512, line_bytes=128, associativity=16,
                        miss_penalty_cycles=350.0),
    memory_bandwidth_gbps=160.0,
    copy_bandwidth_gbps=5.0,
    copy_latency_ms=0.012,
    kernel_launch_overhead_ms=0.010,
    static_power_w=38.0,
    dram_access_energy_nj=22.0,
    instruction_energy_nj={
        InstructionType.FP32: 0.18,
        InstructionType.FP64: 0.50,
        InstructionType.INT: 0.11,
        InstructionType.BIT: 0.08,
        InstructionType.BRANCH: 0.09,
        InstructionType.LOAD: 0.35,
        InstructionType.STORE: 0.35,
    },
    compile_expansion={
        # Kepler's compiler schedules slightly differently from Fermi.
        InstructionType.INT: 0.97,
        InstructionType.BRANCH: 0.95,
    },
)

TEGRA_K1 = GPUArchitecture(
    # GK20A: one Kepler SMX on a mobile SoC with a small L2 and LPDDR3.
    name="Tegra K1",
    sm_count=1,
    cores_per_sm=192,
    schedulers_per_sm=4,
    clock_mhz=852.0,
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    warp_size=32,
    warp_issue_cycles={
        InstructionType.FP32: 0.5,
        InstructionType.FP64: 12.0,
        InstructionType.INT: 0.75,
        InstructionType.BIT: 0.75,
        InstructionType.BRANCH: 1.0,
        InstructionType.LOAD: 1.5,
        InstructionType.STORE: 1.5,
    },
    cache=CacheGeometry(size_kb=128, line_bytes=128, associativity=8,
                        miss_penalty_cycles=650.0),
    memory_bandwidth_gbps=14.9,
    copy_bandwidth_gbps=5.0,  # unified memory: cudaMemcpy is a DRAM copy
    copy_latency_ms=0.020,
    kernel_launch_overhead_ms=0.030,
    static_power_w=1.4,
    dram_access_energy_nj=3.2,
    instruction_energy_nj={
        InstructionType.FP32: 0.045,
        InstructionType.FP64: 0.14,
        InstructionType.INT: 0.028,
        InstructionType.BIT: 0.020,
        InstructionType.BRANCH: 0.024,
        InstructionType.LOAD: 0.085,
        InstructionType.STORE: 0.085,
    },
    compile_expansion={
        # The embedded toolchain emits more scaffolding per block
        # (paper Fig. 8: 32 instructions on host vs 43 on target).
        InstructionType.INT: 1.20,
        InstructionType.BIT: 1.15,
        InstructionType.BRANCH: 1.25,
        InstructionType.FP64: 1.10,
        InstructionType.LOAD: 1.10,
        InstructionType.STORE: 1.10,
    },
)

#: All catalogued GPU architectures by name.
CATALOG: Dict[str, GPUArchitecture] = {
    arch.name: arch for arch in (QUADRO_4000, GRID_K520, TEGRA_K1)
}


def get_architecture(name: str) -> GPUArchitecture:
    """Look up a catalogued architecture by its exact name."""
    try:
        return CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(CATALOG))
        raise KeyError(f"unknown GPU architecture {name!r}; known: {known}") from None
