"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``                       — the workload catalog
* ``run APP [options]``          — simulate one app on N VPs and report
* ``table1``                     — regenerate the paper's Table 1
* ``fig9`` / ``fig10`` / ``fig11 [apps...]`` / ``fig12`` / ``fig13``
                                 — regenerate the paper's figures
* ``estimate APP``               — target time/power estimates (Sec. 4)
* ``validate [apps...]``         — cross-backend functional equivalence
* ``report [-o FILE] [--quick]`` — the full paper-vs-measured record
* ``trace APP [-o FILE]``        — record one scenario into a
                                   Chrome/Perfetto trace (+ metrics);
                                   ``--critpath`` prints what bounds it
* ``metrics APP``                — run one scenario, print its metrics
                                   (``--prom`` for Prometheus text)
* ``account APP``                — run one scenario, print the per-VP
                                   accounting table (``account.*``)
* ``trajectory``                 — build/gate the BENCH_*.json
                                   performance trajectory
* ``serve [options]``            — run the multi-tenant simulation
                                   daemon on a local Unix socket
                                   (docs/SERVICE.md)
* ``submit APP [options]``       — submit one scenario to a running
                                   daemon and (by default) wait for
                                   its result
* ``policies``                   — list registered scheduling policies
                                   and placement strategies
* ``backends``                   — list registered execution backends
                                   and their availability
* ``cache stats|clear``          — inspect / purge the persistent
                                   cross-process artifact cache

``run``, ``trace``, ``metrics``, and ``bench`` accept ``--policy`` /
``--placement`` to swap the scheduling pipeline's select/place stages
(see ``repro policies`` and ``docs/SCHEDULING.md``).

``--no-disk-cache`` (before the subcommand) disables the persistent
disk tier for the invocation; ``REPRO_DISK_CACHE=0`` does the same via
the environment and ``REPRO_CACHE_DIR`` relocates the store.
``--backend NAME`` (also before the subcommand) selects the execution
backend for functional kernel work — ``REPRO_BACKEND`` is the
environment equivalent; see ``repro backends`` and ``docs/BACKENDS.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import (
    build_table1,
    fig9a_series,
    fig9b_series,
    fig10a_series,
    fig11_series,
    fig12_series,
    fig13_series,
    render_series,
    render_table,
    render_table1,
)
from .analysis.timeline import collect_timeline, render_gantt
from .gpu.arch import CATALOG, GRID_K520, QUADRO_4000, TEGRA_K1
from .workloads import SUITE, get_workload


def _vps_list(text: str) -> List[int]:
    """argparse type for ``--vps``: an int or a comma list of ints."""
    counts = [int(v) for v in text.split(",") if v != ""]
    if not counts or any(n < 1 for n in counts):
        raise ValueError(f"need positive VP counts, got {text!r}")
    return counts


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise ValueError(f"must be >= 1, got {text!r}")
    return value


def _shards_value(text: str) -> object:
    """argparse type for ``--shards``: a domain count or a plan name."""
    value = text.strip().lower()
    if value in ("", "none", "0", "1"):
        return None
    if value.isdigit():
        return int(value)
    if value in ("per-gpu", "per-vp-group"):
        return value
    raise ValueError(
        f"need a domain count, 'per-gpu' or 'per-vp-group', got {text!r}"
    )


def _sched_options(parser_: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the scheduling-stage overrides (see ``repro policies``)."""
    parser_.add_argument("--policy", default=None, metavar="NAME",
                         help="scheduling policy (default: follow "
                              "interleaving; see `repro policies`)")
    parser_.add_argument("--placement", default=None, metavar="NAME",
                         help="device placement strategy (default: "
                              "round-robin; see `repro policies`)")
    return parser_


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SigmaVP reproduction: host-GPU multiplexing for "
                    "simulating embedded GPUs (DAC 2015).",
    )
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="disable the persistent on-disk artifact cache "
                             "for this invocation (equivalent to "
                             "REPRO_DISK_CACHE=0)")
    parser.add_argument("--no-vectimes", action="store_true",
                        help="disable vectorized batched timing and fall "
                             "back to the scalar reference model "
                             "(equivalent to REPRO_VECTIMES=0; results "
                             "are bit-identical)")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="execution backend for functional kernel "
                             "work (equivalent to REPRO_BACKEND; see "
                             "`repro backends`; results are "
                             "bit-identical across backends)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the workload catalog")

    run = sub.add_parser("run", help="simulate one app on N virtual platforms")
    run.add_argument("app", help="workload name (see `repro list`)")
    run.add_argument("--vps", default="8", type=_vps_list,
                     help="number of VPs, or a comma list (e.g. 2,4,8) to "
                          "fan the sweep over the scenario farm")
    run.add_argument("--workers", type=_positive_int, default=1,
                     help="farm worker processes for a --vps comma list")
    run.add_argument("--gpus", type=int, default=1, help="host GPUs to multiplex")
    run.add_argument("--no-interleaving", action="store_true")
    run.add_argument("--no-coalescing", action="store_true")
    run.add_argument("--transport", choices=("socket", "shm"), default="socket")
    run.add_argument("--functional", action="store_true",
                     help="execute kernels numerically (numpy)")
    run.add_argument("--shards", type=_shards_value, default=None,
                     metavar="N|per-gpu|per-vp-group",
                     help="partition the event loop into time-decoupled "
                          "simulation domains (results are bit-identical "
                          "to the serial engine)")
    run.add_argument("--gantt", action="store_true",
                     help="print the engine timeline")
    run.add_argument("--account", action="store_true",
                     help="print per-VP / per-kind latency accounting")
    _sched_options(run)

    def with_workers(parser_, default=1):
        parser_.add_argument("--workers", type=_positive_int, default=default,
                             help="farm worker processes (1 = serial)")
        return parser_

    with_workers(sub.add_parser(
        "table1", help="regenerate Table 1 (matrixMul, six routes)"))
    with_workers(sub.add_parser(
        "fig9", help="regenerate Fig 9 (Kernel Interleaving)"))
    with_workers(sub.add_parser(
        "fig10", help="regenerate Fig 10(a) (Kernel Coalescing)"))
    fig11 = with_workers(sub.add_parser(
        "fig11", help="regenerate Fig 11 (the suite, 8 VPs)"))
    fig11.add_argument("apps", nargs="*", help="subset of apps (default: all)")
    with_workers(sub.add_parser(
        "fig12", help="regenerate Fig 12 (timing estimation)"))
    with_workers(sub.add_parser(
        "fig13", help="regenerate Fig 13 (power estimation)"))

    bench = sub.add_parser(
        "bench",
        help="benchmark-regression harness: pinned suite, serial cold/warm "
             "vs parallel, bit-identical results asserted",
    )
    bench.add_argument("--workers", type=_positive_int, default=4,
                       help="farm worker processes for the parallel mode")
    bench.add_argument("--quick", action="store_true",
                       help="CI smoke subset of the pinned suite")
    bench.add_argument("-o", "--output", default="BENCH_PR8.json",
                       help="JSON report path (use '-' to skip writing)")
    bench.add_argument("--no-shard", action="store_true",
                       help="skip the domain-sharding section "
                            "(sharded / sharded_mp modes)")
    bench.add_argument("--trace", action="store_true",
                       help="add a traced parallel mode and write one "
                            "merged multi-worker trace")
    bench.add_argument("--trace-out", default="bench_trace.json",
                       help="merged Chrome/Perfetto trace path (--trace)")
    bench.add_argument("--metrics-out", default="bench_metrics.json",
                       help="merged metrics snapshot path (--trace)")
    bench.add_argument("--no-overhead-guard", action="store_true",
                       help="skip the disabled-mode overhead check "
                            "against the newest committed BENCH_*.json")
    bench.add_argument("--compare", action="store_true",
                       help="gate this run's per-job warm-serial times "
                            "against the newest committed BENCH_*.json "
                            "with the trajectory sign test")
    bench.add_argument("--cold", action="store_true",
                       help="add the disk-cache cold-start and "
                            "batched-execution sections (private "
                            "temporary store; slower)")
    _sched_options(bench)

    sub.add_parser(
        "policies",
        help="list registered scheduling policies and placement strategies",
    )

    sub.add_parser(
        "backends",
        help="list registered execution backends, their availability and "
             "capability flags",
    )

    cache = sub.add_parser(
        "cache",
        help="inspect or purge the persistent cross-process artifact cache",
    )
    cache.add_argument("action", choices=("stats", "clear"),
                       help="'stats' prints the store location, entry "
                            "count, size, and hit counters as JSON; "
                            "'clear' removes every entry")

    def scenario_options(parser_):
        parser_.add_argument("app", help="workload name (see `repro list`)")
        parser_.add_argument("--vps", type=_positive_int, default=8,
                             help="number of virtual platforms")
        parser_.add_argument("--gpus", type=_positive_int, default=1,
                             help="host GPUs to multiplex")
        parser_.add_argument("--no-interleaving", action="store_true")
        parser_.add_argument("--no-coalescing", action="store_true")
        parser_.add_argument("--transport", choices=("socket", "shm"),
                             default="socket")
        _sched_options(parser_)
        return parser_

    trace = scenario_options(sub.add_parser(
        "trace",
        help="run one scenario with observability on; export a "
             "Chrome/Perfetto trace (open at ui.perfetto.dev)",
    ))
    trace.add_argument("-o", "--output", default="trace.json",
                       help="trace JSON path")
    trace.add_argument("--metrics-out", default=None,
                       help="also write the metrics snapshot here")
    trace.add_argument("--gantt", action="store_true",
                       help="print an ASCII gantt rebuilt from the trace")
    trace.add_argument("--critpath", action="store_true",
                       help="print critical-path attribution: which "
                            "engine/IPC/idle segment bounds the scenario")

    metrics = scenario_options(sub.add_parser(
        "metrics",
        help="run one scenario with metrics on; print the registry",
    ))
    metrics.add_argument("-o", "--output", default=None,
                         help="also write the snapshot JSON here "
                              "(a .prom sibling is written alongside)")
    metrics.add_argument("--prom", action="store_true",
                         help="print Prometheus text exposition instead "
                              "of the table")

    scenario_options(sub.add_parser(
        "account",
        help="run one scenario and print the per-VP accounting table "
             "(busy/wait, coalesce share, fairness, deadlines)",
    ))

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant simulation daemon on a local Unix "
             "socket (submit with `repro submit`; see docs/SERVICE.md)",
    )
    serve.add_argument("--socket", default=None, metavar="PATH",
                       help="Unix socket path (default: "
                            "$REPRO_SERVE_SOCKET or "
                            "<cache-root>/serve/serve.sock)")
    serve.add_argument("--state-dir", default=None, metavar="DIR",
                       help="journal directory (default: <cache-root>/serve)")
    serve.add_argument("--max-depth", type=_positive_int, default=None,
                       help="queue bound; submissions past it are "
                            "rejected with 'queue-full' (default 64)")
    serve.add_argument("--tenant-quota", type=int, default=None,
                       help="per-tenant queued+running cap, 0 = "
                            "unlimited (default 16)")
    serve.add_argument("--queue-policy", default="fair-share",
                       metavar="NAME",
                       help="tenant scheduling policy (any `repro "
                            "policies` name; default fair-share)")
    serve.add_argument("--workers", type=_positive_int, default=1,
                       help="concurrent worker processes (default 1)")
    serve.add_argument("--no-warm", action="store_true",
                       help="skip pre-fork kernel compilation warm-up")

    submit = scenario_options(sub.add_parser(
        "submit",
        help="submit one scenario to a running `repro serve` daemon",
    ))
    submit.add_argument("--functional", action="store_true",
                        help="execute kernels numerically (numpy)")
    submit.add_argument("--shards", type=_shards_value, default=None,
                        metavar="N|per-gpu|per-vp-group",
                        help="partition the event loop into "
                             "time-decoupled simulation domains")
    submit.add_argument("--tenant", default="default",
                        help="tenant to account this job to")
    submit.add_argument("--qos", type=int, default=None,
                        help="QoS tier for priority-deadline queue "
                             "scheduling (0 = most urgent)")
    submit.add_argument("--socket", default=None, metavar="PATH",
                        help="daemon socket path (default: "
                             "$REPRO_SERVE_SOCKET or the serve default)")
    submit.add_argument("--detach", action="store_true",
                        help="return after the job is accepted instead "
                             "of waiting for its result")

    trajectory = sub.add_parser(
        "trajectory",
        help="build the BENCH_*.json performance trajectory and apply "
             "the statistical regression gate",
    )
    trajectory.add_argument("-o", "--output", default="TRAJECTORY.json",
                            help="trajectory JSON path ('-' to skip writing)")
    trajectory.add_argument("--tolerance", type=float, default=None,
                            help="relative per-job change treated as a tie "
                                 "(default 0.10)")
    trajectory.add_argument("--alpha", type=float, default=None,
                            help="sign-test significance level (default 0.05)")
    trajectory.add_argument("--no-gate", action="store_true",
                            help="report only; never exit non-zero on a "
                                 "flagged regression")

    estimate = sub.add_parser("estimate", help="target time/power for one app")
    estimate.add_argument("app")
    estimate.add_argument("--host", choices=("quadro", "grid"), default="quadro")

    report = sub.add_parser(
        "report", help="regenerate the full paper-vs-measured report"
    )
    report.add_argument("-o", "--output", default="report.md")
    report.add_argument("--quick", action="store_true",
                        help="reduced Fig-11 app set")

    validate = sub.add_parser(
        "validate",
        help="check functional equivalence across all execution routes",
    )
    validate.add_argument("apps", nargs="*",
                          help="workloads to validate (default: a core set)")

    return parser


def _cmd_list() -> None:
    rows = []
    for name in sorted(SUITE):
        spec = SUITE[name]
        rows.append((
            name,
            spec.elements,
            spec.iterations,
            f"{spec.fp_fraction:.0%}",
            "yes" if spec.coalescible else "no",
            "yes" if spec.uses_noncuda else "no",
            spec.description[:46],
        ))
    print(render_table(
        ["Workload", "Elements", "Iters", "FP", "Coalescible",
         "Non-CUDA", "Description"],
        rows,
        title=f"Workload catalog ({len(SUITE)} applications)",
    ))


def _scenario_request(args: argparse.Namespace, n_vps: Optional[int] = None):
    """The :class:`~repro.api.RunRequest` a CLI scenario describes.

    One construction shared by ``run``, ``trace``, ``metrics``,
    ``account``, and ``submit``; the request's non-default-only kwargs
    rule keeps every default invocation on its pre-existing config-hash
    key.  An explicit ``--backend`` *does* enter the job key (it names
    how the run was produced), even though results are digest-identical
    across backends by contract.
    """
    from .api import RunRequest

    return RunRequest(
        app=args.app,
        n_vps=n_vps if n_vps is not None else args.vps,
        interleaving=not args.no_interleaving,
        coalescing=not args.no_coalescing,
        transport=args.transport,
        n_host_gpus=args.gpus,
        functional=getattr(args, "functional", False),
        policy=getattr(args, "policy", None),
        placement=getattr(args, "placement", None),
        shards=getattr(args, "shards", None),
        backend=getattr(args, "backend", None),
        tenant=getattr(args, "tenant", None) or "default",
        qos=getattr(args, "qos", None),
    )


def _cmd_run_sweep(args: argparse.Namespace, vps_list: List[int]) -> None:
    """Fan one app across several VP counts over the scenario farm."""
    from .exec import ScenarioFarm

    farm = ScenarioFarm(workers=args.workers)
    results = farm.map([
        _scenario_request(args, n_vps=n).to_farm_job() for n in vps_list
    ])
    rows = []
    for result in results:
        value = result.value
        rows.append((
            value["n_instances"],
            value["total_ms"],
            value.get("ipc_messages", "-"),
            value.get("coalesce_merges", "-"),
            f"{result.duration_s:.2f}",
        ))
    print(render_table(
        ["VPs", "Total (ms)", "IPC msgs", "Merges", "Host wall (s)"],
        rows,
        title=f"{args.app}: VP-count sweep on {farm.workers} worker(s)",
    ))


def _cmd_run(args: argparse.Namespace) -> None:
    vps_list = args.vps
    if len(vps_list) > 1:
        if args.functional or args.gantt or args.account:
            raise SystemExit(
                "repro run: error: --functional/--gantt/--account "
                "need a single --vps count"
            )
        _cmd_run_sweep(args, vps_list)
        return
    args.vps = vps_list[0]
    from .api import scenario

    result = scenario(_scenario_request(args))
    framework = result.extras["framework"]
    total = result.total_ms
    print(f"{result.workload}: {args.vps} VPs on {args.gpus} host GPU(s), "
          f"interleaving={'on' if not args.no_interleaving else 'off'}, "
          f"coalescing={'on' if not args.no_coalescing else 'off'}, "
          f"policy={framework.dispatcher.policy.name}, "
          f"placement={framework.dispatcher.pipeline.placement.name}")
    print(f"total simulated time: {total:.3f} ms")
    print(f"IPC messages: {framework.ipc.messages_sent}")
    if framework.coalescer is not None:
        stats = framework.coalescer.stats
        print(f"coalescer: {stats.merges} merges covering "
              f"{stats.kernels_coalesced} kernels")
    print(f"kernels profiled: {len(framework.profiler)}")
    stats_fn = getattr(framework.env, "domain_stats", None)
    if callable(stats_fn):
        stats = stats_fn()
        print(f"domains: {stats['domains']} (plan {stats['plan']}), "
              f"lookahead {stats['lookahead_ms']:.3f} ms, "
              f"{stats['epochs']} epochs, "
              f"{stats['switches']} domain switches")
    if args.gantt:
        print()
        print(render_gantt(collect_timeline(framework)))
    if args.account:
        from .analysis.accounting import render_accounting

        print()
        print(render_accounting(framework))


def _cmd_table1(workers: int = 1) -> None:
    print(render_table1(build_table1(workers=workers)))


def _cmd_fig9(workers: int = 1) -> None:
    points = fig9b_series(workers=workers)
    print(render_series(
        "Fig 9(b): interleaving speedup vs N programs (Tk = Tm)",
        [int(p.x) for p in points],
        [("Results", [p.measured for p in points]),
         ("Expected", [p.expected for p in points])],
        x_label="N",
    ))
    print()
    points = fig9a_series(kernel_lengths_ms=(2.0, 8.0, 13.44, 30.0, 60.0),
                          workers=workers)
    print(render_series(
        "Fig 9(a): speedup vs kernel length (2 programs, Tm = 13.44 ms)",
        [f"{p.x:.2f}" for p in points],
        [("Results", [p.measured for p in points]),
         ("Expected", [p.expected for p in points])],
        x_label="kernel ms",
    ))


def _cmd_fig10(workers: int = 1) -> None:
    points = fig10a_series(workers=workers)
    print(render_series(
        "Fig 10(a): coalescing 64 vectorAdd programs",
        [p.batch for p in points],
        [("Time (ms)", [p.total_ms for p in points]),
         ("Speedup", [p.speedup for p in points])],
        x_label="coalesced",
    ))


def _cmd_fig11(apps: List[str], workers: int = 1) -> None:
    kwargs = {"apps": tuple(apps)} if apps else {}
    points = fig11_series(workers=workers, **kwargs)
    print(render_table(
        ["App", "Emulation (s)", "x multiplexing", "x optimized"],
        [(p.app, p.emulation_ms / 1e3, p.multiplexing_speedup,
          p.optimized_speedup) for p in points],
        title="Fig 11: 8 VPs, emulation vs SigmaVP",
    ))


def _cmd_fig12(workers: int = 1) -> None:
    points = fig12_series(workers=workers)
    print(render_table(
        ["Host", "App", "H", "T", "C", "C'", "C''"],
        [(p.host, p.app, p.h_normalized, p.t_normalized, p.c_normalized,
          p.c_prime_normalized, p.c_double_prime_normalized) for p in points],
        title="Fig 12: normalized execution times (target = Tegra K1)",
    ))


def _cmd_fig13(workers: int = 1) -> None:
    points = fig13_series(workers=workers)
    print(render_table(
        ["Host", "App", "Measured (W)", "Estimate (W)", "Error (%)"],
        [(p.host, p.app, p.measured_w, p.estimated_w, p.error_pct)
         for p in points],
        title="Fig 13: target power, measured vs estimated",
    ))


def _cmd_estimate(args: argparse.Namespace) -> None:
    from .core.estimation import ExecutionAnalyzer

    host = QUADRO_4000 if args.host == "quadro" else GRID_K520
    spec = get_workload(args.app)
    analyzer = ExecutionAnalyzer(host, TEGRA_K1)
    kernel, launch = spec.kernel, spec.launch_config()
    profile = analyzer.profile_on_host(kernel, launch)
    estimate = analyzer.analyze(kernel, launch, host_profile=profile)
    power = analyzer.estimate_power(kernel, launch, host_profile=profile)
    as_ms = analyzer.estimated_time_ms
    print(f"{spec.name} on {host.name} -> Tegra K1")
    print(f"  host execution:     {profile.time_ms:10.3f} ms")
    print(f"  estimate C:         {as_ms(estimate.c_cycles):10.3f} ms")
    print(f"  estimate C':        {as_ms(estimate.c_prime_cycles):10.3f} ms")
    print(f"  estimate C'':       {as_ms(estimate.c_double_prime_cycles):10.3f} ms")
    print(f"  estimated power:    {power.total_w:10.3f} W "
          f"(static {power.static_w:.2f} + dynamic {power.dynamic_w:.2f})")


def _captured_scenario(args: argparse.Namespace):
    """Run one scenario with capture on; returns (job, FarmResult).

    Routing through the request's :class:`FarmJob` projection gives the
    run the farm's config-hash identity and deterministic seed for
    free, so exported artifacts are stamped exactly like the equivalent
    farm job.
    """
    from .exec import ScenarioFarm

    job = _scenario_request(args).to_farm_job()
    result = ScenarioFarm(workers=1, warmup=False, capture_obs=True).map([job])[0]
    return job, result


def _cmd_trace(args: argparse.Namespace) -> None:
    from pathlib import Path

    from .analysis.timeline import render_gantt, timeline_from_trace
    from .obs import run_stamp, span_counts_by_lane, write_metrics, write_trace

    job, result = _captured_scenario(args)
    stamp = run_stamp(job.fn, job.kwargs, seed=job.seed, label=job.label)
    path = write_trace(Path(args.output), [(job.label, result.trace)], stamp)
    value = result.value
    print(f"{job.label}: total simulated time {value['total_ms']:.3f} ms "
          f"(config {stamp['config_hash']}, seed {stamp['seed']})")
    for lane, count in span_counts_by_lane(result.trace).items():
        print(f"  {lane:<28} {count:5d} spans")
    print(f"trace written to {path} (open at ui.perfetto.dev)")
    if args.metrics_out:
        mpath = write_metrics(Path(args.metrics_out), result.metrics, stamp)
        print(f"metrics written to {mpath}")
    if args.gantt:
        print()
        print(render_gantt(timeline_from_trace(result.trace)))
    if args.critpath:
        from .analysis.critpath import attribute, render_critpath

        print()
        print(render_critpath(attribute(result.trace)))


def _cmd_metrics(args: argparse.Namespace) -> None:
    from pathlib import Path

    from .obs import (
        metrics_snapshot,
        render_metrics,
        run_stamp,
        to_prometheus,
        write_metrics,
    )

    job, result = _captured_scenario(args)
    stamp = run_stamp(job.fn, job.kwargs, seed=job.seed, label=job.label)
    snapshot = metrics_snapshot(result.metrics, stamp)
    if args.prom:
        print(to_prometheus(snapshot), end="")
    else:
        print(render_metrics(snapshot))
    if args.output:
        path = write_metrics(Path(args.output), result.metrics, stamp)
        print(f"metrics written to {path} "
              f"(+ {Path(path).with_suffix('.prom').name})")


def _cmd_account(args: argparse.Namespace) -> None:
    from .api import scenario
    from .obs import render_accounts

    result = scenario(_scenario_request(args))
    framework = result.extras["framework"]
    print(f"{result.workload}: {args.vps} VPs on {args.gpus} host GPU(s), "
          f"policy={framework.dispatcher.policy.name}, "
          f"total simulated time {result.total_ms:.3f} ms")
    print()
    print(render_accounts(framework))


DEFAULT_VALIDATION_APPS = ("vectorAdd", "BlackScholes", "mergeSort",
                           "physxParticles", "histogram")


def _cmd_validate(apps: List[str]) -> int:
    from .analysis.validation import validate_workload

    names = apps or list(DEFAULT_VALIDATION_APPS)
    failures = 0
    rows = []
    for name in names:
        spec = get_workload(name)
        if spec.elements > 16384:
            spec = spec.scaled_to(8192, iterations=min(spec.iterations, 2))
        result = validate_workload(spec)
        rows.append((
            name,
            "OK" if result.ok else "FAIL",
            f"{result.max_abs_difference:g}",
            result.detail or "-",
        ))
        if not result.ok:
            failures += 1
    print(render_table(
        ["Workload", "Equivalent", "Max |diff|", "Detail"],
        rows,
        title="Cross-backend functional validation "
              "(emulation vs native vs SigmaVP)",
    ))
    return 1 if failures else 0


def _cmd_policies() -> None:
    from .sched import available_placements, available_policies

    print(render_table(
        ["Policy", "Description"],
        available_policies(),
        title="Scheduling policies (select stage)",
    ))
    print()
    print(render_table(
        ["Placement", "Description"],
        available_placements(),
        title="Placement strategies (place stage)",
    ))
    print()
    print("Use with: repro run/trace/metrics/bench --policy NAME "
          "--placement NAME")


def _cmd_backends() -> None:
    from .backend import backend_status, default_backend_name

    default = default_backend_name()
    rows = []
    for status in backend_status():
        name = status["name"]
        rows.append((
            name + (" *" if name == default else ""),
            "yes" if status["available"] else "no",
            "yes" if status["supports_batched"] else "no",
            "yes" if status["zero_copy"] else "no",
            status["description"] if status["available"]
            else status["reason"] or status["description"],
        ))
    print(render_table(
        ["Backend", "Available", "Batched", "Zero-copy", "Description"],
        rows,
        title="Execution backends (* = process default)",
    ))
    print()
    print("Select with: repro --backend NAME <command>, REPRO_BACKEND=NAME, "
          "or backend= in SchedulerConfig")


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from .serve import ServeDaemon

    kwargs = {}
    if args.max_depth is not None:
        kwargs["max_depth"] = args.max_depth
    if args.tenant_quota is not None:
        kwargs["tenant_quota"] = args.tenant_quota
    daemon = ServeDaemon(
        socket_path=args.socket,
        state_dir=args.state_dir,
        policy=args.queue_policy,
        max_workers=args.workers,
        warm=not args.no_warm,
        **kwargs,
    )
    daemon.start()
    print(f"repro serve: listening on {daemon.socket_path}")
    print(f"  state dir:  {daemon.state_dir}")
    print(f"  policy:     {daemon.queue.policy_name}, "
          f"max depth {daemon.queue.max_depth}, "
          f"tenant quota {daemon.queue.tenant_quota}, "
          f"{daemon.max_workers} worker(s)")
    recovery = daemon.recovery
    if recovery["resumed"] or recovery["faulted"]:
        print(f"  recovered:  {recovery['resumed']} job(s) requeued, "
              f"{recovery['faulted']} faulted (mid-run at crash)")
    try:
        while daemon.running:
            time.sleep(0.2)
    except KeyboardInterrupt:
        print("repro serve: shutting down (requeueing running jobs)")
        daemon.stop()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .serve import JobState, ServeClient, ServeError

    request = _scenario_request(args)
    try:
        with ServeClient.connect(args.socket) as client:
            record = client.submit(request)
            print(f"{record['job_id']}: {record['label']} submitted for "
                  f"tenant {record['tenant']} "
                  f"(config {record['config_hash']})")
            if args.detach:
                print(f"query with: repro.api.connect()"
                      f".status({record['job_id']!r})")
                return 0
            record = client.wait(record["job_id"])
    except ServeError as exc:
        print(f"repro submit: error: {exc}", file=sys.stderr)
        return 1
    state = record["state"]
    if state == JobState.DONE.value:
        value = record["value"]
        print(f"total simulated time: {value['total_ms']:.3f} ms")
        print(f"digest: {record['digest']}")
        return 0
    error = record.get("error") or {}
    print(f"{record['job_id']}: {state}"
          + (f" [{error.get('code')}] {error.get('message')}" if error else ""),
          file=sys.stderr)
    return 1


def _cmd_cache(action: str) -> None:
    import json

    from . import cache as repro_cache

    if action == "clear":
        stats = repro_cache.cache_stats()
        repro_cache.clear_disk()
        print(f"cleared {stats['entries']} entries "
              f"({stats['total_bytes']} bytes) from {stats['root']}")
        return
    print(json.dumps(repro_cache.cache_stats(), indent=2))


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.no_disk_cache:
        from . import cache as repro_cache

        repro_cache.set_disk_enabled(False)
    if args.no_vectimes:
        from .gpu import vectimes as _vectimes

        _vectimes.set_vectimes_enabled(False)
    if args.backend is not None:
        from .backend import set_default_backend

        try:
            set_default_backend(args.backend)
        except ValueError as exc:
            parser.error(str(exc))
    if args.command == "list":
        _cmd_list()
    elif args.command == "run":
        _cmd_run(args)
    elif args.command == "table1":
        _cmd_table1(args.workers)
    elif args.command == "fig9":
        _cmd_fig9(args.workers)
    elif args.command == "fig10":
        _cmd_fig10(args.workers)
    elif args.command == "fig11":
        _cmd_fig11(args.apps, args.workers)
    elif args.command == "fig12":
        _cmd_fig12(args.workers)
    elif args.command == "fig13":
        _cmd_fig13(args.workers)
    elif args.command == "bench":
        from pathlib import Path

        from .exec.bench import render_report, run_bench

        report = run_bench(
            workers=args.workers,
            quick=args.quick,
            output=None if args.output == "-" else Path(args.output),
            trace=args.trace,
            overhead_guard=not args.no_overhead_guard,
            cold=args.cold,
            policy=args.policy,
            placement=args.placement,
            compare=args.compare,
            shard=not args.no_shard,
        )
        print(render_report(report))
        if args.output != "-":
            print(f"report written to {args.output}")
        if args.trace:
            from .obs import run_stamp, write_metrics, write_trace

            stamp = run_stamp(
                "repro.exec.bench:run_bench",
                {"suite": report["suite"], "workers": report["workers"]},
                label=f"bench:{report['suite']}",
            )
            artifacts = report["artifacts"]
            tpath = write_trace(
                Path(args.trace_out), artifacts["trace_sources"], stamp
            )
            mpath = write_metrics(
                Path(args.metrics_out), artifacts["metrics"]["totals"], stamp
            )
            print(f"merged trace written to {tpath} "
                  f"({len(artifacts['trace_sources'])} jobs)")
            print(f"merged metrics written to {mpath}")
    elif args.command == "trace":
        _cmd_trace(args)
    elif args.command == "metrics":
        _cmd_metrics(args)
    elif args.command == "account":
        _cmd_account(args)
    elif args.command == "trajectory":
        from pathlib import Path

        from .exec import trajectory as trajectory_mod

        kwargs = {}
        if args.tolerance is not None:
            kwargs["tolerance"] = args.tolerance
        if args.alpha is not None:
            kwargs["alpha"] = args.alpha
        report = trajectory_mod.build(**kwargs)
        print(trajectory_mod.render_trajectory(report))
        if args.output != "-":
            path = trajectory_mod.write_trajectory(Path(args.output), report)
            print(f"trajectory written to {path}")
        if report["regressions"] and not args.no_gate:
            return 1
    elif args.command == "estimate":
        _cmd_estimate(args)
    elif args.command == "report":
        from pathlib import Path

        from .analysis.report_builder import write_report

        path = write_report(Path(args.output), quick=args.quick)
        print(f"report written to {path}")
    elif args.command == "policies":
        _cmd_policies()
    elif args.command == "backends":
        _cmd_backends()
    elif args.command == "serve":
        return _cmd_serve(args)
    elif args.command == "submit":
        return _cmd_submit(args)
    elif args.command == "cache":
        _cmd_cache(args.action)
    elif args.command == "validate":
        return _cmd_validate(args.apps)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
