"""Comparative execution scenarios: the paper's evaluation routes.

Table 1 and Fig. 11 compare the same applications along different
execution routes.  Each function here runs one route end to end in a
fresh simulation environment and returns a :class:`ScenarioResult`:

* :func:`run_native_gpu` — CUDA on the (modelled) host GPU, no VP;
* :func:`run_emulation` — CUDA interpreted in software on a CPU model
  (the host Xeon, or the binary-translated QEMU ARM VP);
* :func:`run_sigma_vp` — the paper's contribution, with interleaving
  and coalescing switchable;
* :func:`run_c_program` — the plain-C implementation on a CPU model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..backend.api import ExecutionBackend
from ..backend.registry import make_backend
from ..gpu.arch import GPUArchitecture, QUADRO_4000
from ..gpu.device import HostGPU
from ..kernels.functional import REGISTRY, FunctionalRegistry
from ..sched.config import SchedulerConfig
from ..sim import Environment, ShardedEnvironment
from ..sim.domains import scenario_plan
from ..vp.cpu import CPUModel, HOST_XEON, QEMU_ARM_VP
from ..vp.cuda_runtime import CudaRuntime, EmulationBackend, NativeGPUBackend
from ..vp.platform import VirtualPlatform
from ..workloads.base import WorkloadSpec, build_app
from .framework import SigmaVP
from .ipc import IPCTransport, SOCKET

#: Registry used when functional (numpy) execution is switched off:
#: timing-only runs, as used by the parameter-sweep benchmarks.
NULL_REGISTRY = FunctionalRegistry()


@dataclass
class ScenarioResult:
    """Outcome of one execution route."""

    scenario: str
    workload: str
    n_instances: int
    total_ms: float
    per_instance_ms: List[float] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"ScenarioResult({self.scenario!r}, {self.workload!r}, "
            f"n={self.n_instances}, total={self.total_ms:.2f}ms)"
        )

    def summary(self) -> Dict[str, object]:
        """JSON-able digest of this result.

        This is the wire format of the scenario farm: everything a
        cross-process caller can consume (``extras`` holds live objects
        like the framework itself, which stay behind), and exactly what
        the bench harness hashes when asserting that serial, parallel,
        cold and warm runs simulate identical outcomes.
        """
        out: Dict[str, object] = {
            "scenario": self.scenario,
            "workload": self.workload,
            "n_instances": self.n_instances,
            "total_ms": self.total_ms,
            "per_instance_ms": list(self.per_instance_ms),
        }
        if "ipc_messages" in self.extras:
            out["ipc_messages"] = self.extras["ipc_messages"]
        stats = self.extras.get("coalesce_stats")
        if stats is not None:
            out["coalesce_merges"] = stats.merges
            out["kernels_coalesced"] = stats.kernels_coalesced
        return out


def _registry(functional: bool) -> FunctionalRegistry:
    return REGISTRY if functional else NULL_REGISTRY


def _exec_backend(
    backend: Optional[str], registry: FunctionalRegistry
) -> Optional[ExecutionBackend]:
    """Build the explicitly named execution backend, or ``None``.

    ``None`` lets each component fall back to the process default
    (``--backend`` / ``REPRO_BACKEND``), which keeps job config-hash
    keys untouched for default runs.  An explicit name must be usable.
    """
    if backend is None:
        return None
    return make_backend(backend, registry=registry).require_available()


def run_native_gpu(
    spec: WorkloadSpec,
    functional: bool = False,
    host_arch: GPUArchitecture = QUADRO_4000,
    backend: Optional[str] = None,
) -> ScenarioResult:
    """CUDA executed natively on the host GPU (Table 1, row 1)."""
    env = Environment()
    registry = _registry(functional)
    exec_backend = _exec_backend(backend, registry)
    gpu = HostGPU(env, host_arch, backend=exec_backend)
    host = VirtualPlatform(env, "host", cpu=HOST_XEON)
    backend_ = NativeGPUBackend(
        env, gpu, host, registry=registry, exec_backend=exec_backend
    )
    runtime = CudaRuntime(backend_)
    process = host.run_app(build_app(spec, runtime))
    env.run(process)
    return ScenarioResult(
        scenario="native-gpu",
        workload=spec.name,
        n_instances=1,
        total_ms=env.now,
        per_instance_ms=[env.now],
        extras={"result": process.value},
    )


def run_emulation(
    spec: WorkloadSpec,
    n_instances: int = 1,
    cpu: CPUModel = QEMU_ARM_VP,
    functional: bool = False,
    concurrent: bool = False,
    backend: Optional[str] = None,
) -> ScenarioResult:
    """CUDA interpreted in software (Table 1 rows 2-3; Fig. 11 blue bars).

    ``cpu=HOST_XEON`` is "CUDA Emul. on CPU"; ``cpu=QEMU_ARM_VP`` is
    "CUDA Emul. on VP".

    By default instances run *serialized*, reflecting the premise the
    paper opens with: "most of the current multi-node system simulators
    run the entire simulation on the host CPU" — the eight-VP emulation
    baseline of Fig. 11 advances one platform at a time.  Pass
    ``concurrent=True`` to model one host core per VP instead.
    """
    if n_instances <= 0:
        raise ValueError(f"n_instances must be positive, got {n_instances}")
    env = Environment()
    registry = _registry(functional)
    exec_backend = _exec_backend(backend, registry)
    processes = []
    platforms = []

    def serialized():
        for index in range(n_instances):
            platform = VirtualPlatform(env, f"emu{index}", cpu=cpu)
            emu = EmulationBackend(
                env, platform, registry=registry, exec_backend=exec_backend
            )
            runtime = CudaRuntime(emu)
            process = platform.run_app(build_app(spec, runtime, seed=index))
            platforms.append(platform)
            processes.append(process)
            yield process

    if concurrent:
        for index in range(n_instances):
            platform = VirtualPlatform(env, f"emu{index}", cpu=cpu)
            emu = EmulationBackend(
                env, platform, registry=registry, exec_backend=exec_backend
            )
            runtime = CudaRuntime(emu)
            processes.append(platform.run_app(build_app(spec, runtime, seed=index)))
            platforms.append(platform)
        env.run(env.all_of(processes))
    else:
        driver = env.process(serialized(), label="driver:emulation/serialized")
        env.run(driver)

    return ScenarioResult(
        scenario=f"emulation({cpu.name})",
        workload=spec.name,
        n_instances=n_instances,
        total_ms=env.now,
        per_instance_ms=[p.elapsed_ms or 0.0 for p in platforms],
        extras={"result": processes[0].value, "concurrent": concurrent},
    )


def run_sigma_vp(
    spec: WorkloadSpec,
    n_vps: int = 1,
    interleaving: bool = True,
    coalescing: bool = True,
    transport: IPCTransport = SOCKET,
    functional: bool = False,
    host_arch: GPUArchitecture = QUADRO_4000,
    max_batch: int = 64,
    hold_window_ms: Optional[float] = None,
    n_host_gpus: int = 1,
    policy: Optional[str] = None,
    placement: Optional[str] = None,
    sched: Optional[SchedulerConfig] = None,
    shards: Optional[object] = None,
    backend: Optional[str] = None,
) -> ScenarioResult:
    """The SigmaVP pipeline (Table 1 row 4; Fig. 11 speedup lines).

    ``policy``/``placement`` name registered scheduling stages (see
    :func:`repro.sched.available_policies`); a full
    :class:`~repro.sched.SchedulerConfig` can be passed as ``sched``
    instead.  With neither, the legacy wiring applies (policy follows
    ``interleaving``, placement is round-robin) and the scenario label —
    part of the digest wire format — is unchanged.

    ``shards`` selects the partitioned in-process event loop (an int
    domain count, ``"per-gpu"``, or ``"per-vp-group"``; see
    :mod:`repro.sim.domains`).  Sharding is a run mechanic, not part of
    the scenario identity: results are digest-identical to the serial
    engine by construction, so the label is unchanged.  ``backend``
    (an execution-backend name) is likewise a run mechanic: registered
    backends are digest-interchangeable, so it never enters the label.
    """
    if n_vps <= 0:
        raise ValueError(f"n_vps must be positive, got {n_vps}")
    if sched is None:
        sched = SchedulerConfig.from_names(policy, placement, backend=backend)
    elif policy is not None or placement is not None or backend is not None:
        raise ValueError(
            "pass either sched= or policy=/placement=/backend=, not both"
        )
    env: Optional[Environment] = None
    if shards is not None:
        plan = scenario_plan(
            shards,
            n_vps,
            n_host_gpus,
            default_placement=sched.placement == "round-robin",
        )
        if plan is not None:
            env = ShardedEnvironment(plan)
    framework = SigmaVP(
        env=env,
        host_arch=host_arch,
        transport=transport,
        interleaving=interleaving,
        coalescing=coalescing,
        max_batch=max_batch,
        hold_window_ms=hold_window_ms,
        registry=_registry(functional),
        n_vps=n_vps,
        n_host_gpus=n_host_gpus,
        sched=sched,
    )
    total = framework.run_workload(spec)
    sessions = [framework.session(n) for n in sorted(framework.sessions)]
    scenario = f"sigma-vp(interleave={interleaving}, coalesce={coalescing})"
    if not sched.is_default_stages():
        # Non-default stages are part of the scenario identity; default
        # runs keep the legacy label so their digests stay bit-identical.
        scenario = (
            f"sigma-vp(interleave={interleaving}, coalesce={coalescing}, "
            f"policy={sched.resolve_policy(interleaving)}, "
            f"placement={sched.placement})"
        )
    return ScenarioResult(
        scenario=scenario,
        workload=spec.name,
        n_instances=n_vps,
        total_ms=total,
        per_instance_ms=[s.vp.elapsed_ms or 0.0 for s in sessions],
        extras={
            "framework": framework,
            "result": sessions[0].processes[0].value if sessions[0].processes else None,
            "coalesce_stats": framework.coalescer.stats if framework.coalescer else None,
            "ipc_messages": framework.ipc.messages_sent,
        },
    )


def run_c_program(spec: WorkloadSpec, cpu: CPUModel = HOST_XEON,
                  n_instances: int = 1) -> ScenarioResult:
    """The plain-C implementation on a CPU model (Table 1 rows 5-6).

    Instances are independent processes on independent cores, so the
    total equals one instance's time.
    """
    if spec.c_ops <= 0:
        raise ValueError(f"{spec.name} has no C-implementation op count")
    per_instance = cpu.time_for_ops(spec.c_ops)
    return ScenarioResult(
        scenario=f"c-program({cpu.name})",
        workload=spec.name,
        n_instances=n_instances,
        total_ms=per_instance,
        per_instance_ms=[per_instance] * n_instances,
    )
