"""Analytical models of Kernel Interleaving (paper Eq. 7 and Eq. 8).

These closed forms are what Fig. 9 plots as the "Expected" curves; the
benchmarks compare them against the discrete-event measurements.

Each interleaved program is the loop the paper describes: "a memory copy
from host to device, a kernel execution, and a memory copy from device to
host".
"""

from __future__ import annotations


def serial_total_time(n_programs: int, t_copy_ms: float, t_kernel_ms: float) -> float:
    """Total time without interleaving: every phase fully serialized.

    With Tm = Tk = T this is the paper's 3NT reference.
    """
    _validate(n_programs, t_copy_ms, t_kernel_ms)
    return n_programs * (2.0 * t_copy_ms + t_kernel_ms)


def interleaved_total_time(n_programs: int, t_copy_ms: float, t_kernel_ms: float) -> float:
    """Eq. (7): Ttotal = 2*Tm + N * max(Tm, Tk).

    The first input copy and the last output copy are exposed; everything
    in between pipelines at the pace of the slower engine (latency
    hiding).
    """
    _validate(n_programs, t_copy_ms, t_kernel_ms)
    return 2.0 * t_copy_ms + n_programs * max(t_copy_ms, t_kernel_ms)


def expected_speedup(n_programs: int, t_copy_ms: float, t_kernel_ms: float) -> float:
    """Interleaving speedup for arbitrary Tm, Tk (the Fig. 9a curve)."""
    return serial_total_time(n_programs, t_copy_ms, t_kernel_ms) / interleaved_total_time(
        n_programs, t_copy_ms, t_kernel_ms
    )


def balanced_speedup(n_programs: int) -> float:
    """Eq. (8): speedup = 3N / (2 + N) when Tm = Tk (the Fig. 9b curve).

    Approaches 3x asymptotically — the three pipeline phases fully
    overlapped.
    """
    if n_programs <= 0:
        raise ValueError(f"n_programs must be positive, got {n_programs}")
    return 3.0 * n_programs / (2.0 + n_programs)


def _validate(n_programs: int, t_copy_ms: float, t_kernel_ms: float) -> None:
    if n_programs <= 0:
        raise ValueError(f"n_programs must be positive, got {n_programs}")
    if t_copy_ms < 0 or t_kernel_ms < 0:
        raise ValueError("phase times must be non-negative")
