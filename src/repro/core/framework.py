"""The SigmaVP framework: one host machine serving many virtual platforms.

This is the top-level object of the reproduction (paper Fig. 2).  It
wires together the host GPU model, the Job Queue, the IPC manager with VP
control, the Re-scheduler policy, the Kernel Coalescer, the Job
Dispatcher, the Profiler, and the Time/Power Estimation module; adds
virtual platforms; and runs their applications to completion in one
discrete-event simulation.

Typical use::

    from repro import SigmaVP, SUITE

    framework = SigmaVP(n_vps=8)
    framework.run_workload(SUITE["BlackScholes"])
    print(framework.total_time_ms)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..backend.registry import make_backend
from ..gpu.arch import GPUArchitecture, QUADRO_4000, TEGRA_K1
from ..gpu.device import HostGPU
from ..kernels.functional import REGISTRY, FunctionalRegistry
from ..sched.config import SchedulerConfig
from ..sched.registry import make_placement, make_policy
from ..sim import Environment, Process
from ..vp.cpu import CPUModel, QEMU_ARM_VP
from ..vp.cuda_runtime import CudaRuntime, SigmaVPBackend
from ..kernels.compiler import KernelCompiler
from ..vp.platform import VirtualPlatform
from .coalescing import KernelCoalescer
from .dispatcher import JobDispatcher, ServiceMode
from .estimation import ExecutionAnalyzer
from .handles import HandleTable
from .ipc import IPCManager, IPCTransport, SOCKET
from .jobs import JobQueue
from .profiler import Profiler


@dataclass
class VPSession:
    """One virtual platform attached to the framework."""

    vp: VirtualPlatform
    runtime: CudaRuntime
    processes: List[Process]


class SigmaVP:
    """Simulation using GPU-Multiplexing for Acceleration of VPs."""

    def __init__(
        self,
        env: Optional[Environment] = None,
        host_arch: GPUArchitecture = QUADRO_4000,
        target_arch: GPUArchitecture = TEGRA_K1,
        transport: IPCTransport = SOCKET,
        interleaving: bool = True,
        coalescing: bool = True,
        max_batch: int = 64,
        target_batch: Optional[int] = None,
        hold_window_ms: Optional[float] = None,
        registry: FunctionalRegistry = REGISTRY,
        n_vps: int = 0,
        vp_cpu: CPUModel = QEMU_ARM_VP,
        n_host_gpus: int = 1,
        sched: Optional[SchedulerConfig] = None,
    ):
        if n_host_gpus < 1:
            raise ValueError(f"n_host_gpus must be >= 1, got {n_host_gpus}")
        self.env = env or Environment()
        # The scheduler config names the pluggable stages and the
        # execution backend; resolved here, before any component that
        # routes functional work through the backend seam is built.
        self.sched = sched if sched is not None else SchedulerConfig()
        self.backend = make_backend(
            self.sched.resolve_backend(),
            registry=registry,
            **self.sched.backend_options(),
        )
        # An explicitly configured backend must be usable; the implicit
        # default is validated lazily so timing-only runs keep working
        # in environments where the default backend cannot.
        if self.sched.backend is not None:
            self.backend.require_available()
        # "SigmaVP multiplexes the host GPUs": one or more devices (the
        # Grid K520 board, for instance, carries two GK104 GPUs).  All
        # devices share one kernel compiler so compilation caches once.
        shared_compiler = KernelCompiler()
        self.gpus = [
            HostGPU(
                self.env,
                host_arch,
                compiler=shared_compiler,
                index=i,
                backend=self.backend,
            )
            for i in range(n_host_gpus)
        ]
        self.gpu = self.gpus[0]
        self.queue = JobQueue(self.env)
        self.handles = HandleTable()
        self.ipc = IPCManager(self.env, self.queue, transport=transport)
        self.profiler = Profiler()
        self.analyzer = ExecutionAnalyzer(
            host_arch, target_arch, compiler=self.gpu.compiler
        )
        self.interleaving = interleaving
        self.coalescing = coalescing

        coalescer = None
        if coalescing:
            kwargs = {} if hold_window_ms is None else {"hold_window_ms": hold_window_ms}
            coalescer = KernelCoalescer(
                self.env,
                self.gpu,
                self.handles,
                max_batch=max_batch,
                target_batch=target_batch,
                **kwargs,
            )
        self.coalescer = coalescer

        # Interleaving = the optimized service discipline; without it the
        # prototype serves one request to completion at a time (the
        # baseline of paper Figs. 3a and 9).  By default the policy
        # follows the ``interleaving`` flag and placement is the legacy
        # round-robin.
        policy = make_policy(
            self.sched.resolve_policy(interleaving), **self.sched.policy_options
        )
        placement = make_placement(
            self.sched.placement, **self.sched.placement_options
        )
        mode = ServiceMode.PIPELINED if interleaving else ServiceMode.SERIAL
        self.dispatcher = JobDispatcher(
            self.env,
            self.gpu,
            self.queue,
            self.handles,
            policy=policy,
            mode=mode,
            coalescer=coalescer,
            registry=registry,
            profiler=self.profiler,
            extra_gpus=self.gpus[1:],
            placement=placement,
            config=self.sched,
            backend=self.backend,
        )
        if coalescer is not None:
            # Triples merge only within one device's VPs.
            coalescer.gpus = self.gpus
            coalescer.device_of = self.dispatcher.device_index_for

        # Sharded environments carry a DomainPlan; components declare
        # their cross-domain edges so the conservative lookahead derives
        # from real latencies (IPC transport, coalescing settle window).
        plan = getattr(self.env, "plan", None)
        if plan is not None:
            self.ipc.declare_domain_edges(plan)
            if coalescer is not None:
                coalescer.declare_domain_edges(plan)
            refresh = getattr(self.env, "refresh_lookahead", None)
            if callable(refresh):
                refresh()

        self.sessions: Dict[str, VPSession] = {}
        self._vp_cpu = vp_cpu
        # With no explicit target batch, the coalescer aims for one merge
        # covering every attached VP (tracked as VPs are added).
        self._auto_target_batch = coalescer is not None and target_batch is None
        for _ in range(n_vps):
            self.add_vp()

    def __repr__(self) -> str:
        return (
            f"<SigmaVP host={self.gpu.arch.name!r} vps={len(self.sessions)} "
            f"interleaving={self.interleaving} coalescing={self.coalescing}>"
        )

    # -- VP management -----------------------------------------------------

    def add_vp(
        self, name: Optional[str] = None, cpu: Optional[CPUModel] = None
    ) -> VPSession:
        """Attach a new virtual platform and its intercepting runtime."""
        if name is None:
            name = f"vp{len(self.sessions)}"
        if name in self.sessions:
            raise ValueError(f"VP {name!r} already exists")
        vp = VirtualPlatform(self.env, name, cpu=cpu or self._vp_cpu)
        self.ipc.vp_control.register(vp)
        backend = SigmaVPBackend(
            self.env, vp, self.ipc, self.handles, exec_backend=self.backend
        )
        session = VPSession(vp=vp, runtime=CudaRuntime(backend), processes=[])
        self.sessions[name] = session
        if self._auto_target_batch:
            # By default, wait for all attached VPs before merging.
            self.coalescer.target_batch = len(self.sessions)
        return session

    def session(self, name: str) -> VPSession:
        try:
            return self.sessions[name]
        except KeyError:
            raise KeyError(f"no VP named {name!r}") from None

    @property
    def vps(self) -> List[VirtualPlatform]:
        return [s.vp for s in self.sessions.values()]

    # -- running applications -----------------------------------------------

    def spawn(self, name: str, app_factory, seed: Optional[int] = None) -> Process:
        """Start an application (from a WorkloadSpec) on one VP."""
        from ..workloads.base import WorkloadSpec, build_app  # local: avoid cycle

        session = self.session(name)
        if isinstance(app_factory, WorkloadSpec):
            app = build_app(
                app_factory,
                session.runtime,
                seed=seed if seed is not None else len(session.processes),
            )
        else:
            app = app_factory(session.runtime)
        process = session.vp.run_app(app)
        session.processes.append(process)
        return process

    def run_workload(self, spec, seeds: Optional[List[int]] = None) -> float:
        """Run ``spec`` on every attached VP concurrently; returns total ms."""
        if not self.sessions:
            raise RuntimeError("no VPs attached; call add_vp() first")
        processes = []
        for index, name in enumerate(sorted(self.sessions)):
            seed = seeds[index] if seeds else index
            processes.append(self.spawn(name, spec, seed=seed))
        return self.run_until(processes)

    def run_until(self, processes: List[Process]) -> float:
        """Advance the simulation until every process finishes.

        When observability is active (``repro trace``, ``repro bench
        --trace``, or any :func:`repro.obs.capture` window), the run is
        self-profiled in host wall-clock and the finished framework's
        state — engine utilizations, per-VP lifetimes, cache hit rates,
        coalescing totals — is collected into the active registry.
        """
        from ..gpu import vectimes as _vectimes  # local: cheap either way
        from ..obs import metrics as _obs_metrics  # local: cheap either way

        start = self.env.now
        with _vectimes.vectimes_scope(
            _vectimes.vectimes_enabled()
            if self.sched.vectimes is None
            else self.sched.vectimes
        ):
            if _obs_metrics.REGISTRY is None:
                self.env.run(self.env.all_of(processes))
            else:
                with _obs_metrics.timed("framework.run"):
                    self.env.run(self.env.all_of(processes))
                _obs_metrics.collect_framework(self)
        return self.env.now - start

    @property
    def total_time_ms(self) -> float:
        return self.env.now

    # -- analysis passthrough --------------------------------------------------

    def estimate_timing(self, kernel, launch):
        """Target-time estimates for a profiled kernel (paper Fig. 12)."""
        host_profile = self.profiler.last_profile(kernel.name)
        return self.analyzer.analyze(kernel, launch, host_profile=host_profile)

    def estimate_power(self, kernel, launch):
        """Target-power estimate for a profiled kernel (paper Fig. 13)."""
        host_profile = self.profiler.last_profile(kernel.name)
        return self.analyzer.estimate_power(kernel, launch, host_profile=host_profile)
