"""Schedule analysis: dependency DAGs, critical paths, makespan bounds.

The paper describes the Re-scheduler as "a non-preemptive, optimal
scheduler augmented for job dependencies [14]".  The dispatch policies in
:mod:`repro.sched.policies` are online heuristics; this module supplies
the offline analytics that judge them: build the dependency DAG of a
queue snapshot (per-VP program order, explicit ``depends_on`` edges, and
engine exclusivity), compute the critical path, and derive two lower
bounds on the achievable makespan —

* the **critical-path bound**: no schedule beats the longest dependency
  chain, and
* the **engine-load bound**: no schedule beats the busiest engine's
  total work.

The benchmarks use these to show how close the interleaving policy gets
to optimal (Fig. 9's Eq. 7 is exactly the engine-load bound of the
phase-loop workload).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import networkx as nx

from .jobs import Job
from ..sched.backlog import engine_role

#: Estimates a job's service time (the dispatcher's `_expected_ms`).
DurationFn = Callable[[Job], float]


@dataclass(frozen=True)
class ScheduleAnalysis:
    """Bounds and structure extracted from one queue snapshot."""

    jobs: int
    critical_path_ms: float
    critical_path: List[int]  # job ids, source to sink
    engine_load_ms: Dict[str, float]
    makespan_lower_bound_ms: float

    @property
    def busiest_engine(self) -> str:
        if not self.engine_load_ms:
            return ""
        return max(self.engine_load_ms, key=self.engine_load_ms.get)

    def efficiency(self, achieved_makespan_ms: float) -> float:
        """Lower-bound optimality ratio in (0, 1]; 1 = provably optimal."""
        if achieved_makespan_ms <= 0:
            raise ValueError("achieved makespan must be positive")
        return min(1.0, self.makespan_lower_bound_ms / achieved_makespan_ms)


def build_dependency_dag(
    jobs: Sequence[Job], duration_fn: DurationFn
) -> "nx.DiGraph":
    """The precedence DAG of a job set.

    Nodes are job ids (with ``duration`` and ``engine`` attributes);
    edges are (a) per-VP program order — consecutive sequence numbers
    within one VP — and (b) explicit cross-VP ``depends_on`` links.
    """
    dag = nx.DiGraph()
    by_completion = {}
    for job in jobs:
        dag.add_node(
            job.job_id,
            duration=duration_fn(job),
            engine=engine_role(job),
            vp=job.vp,
        )
        by_completion[id(job.completion)] = job.job_id

    by_vp: Dict[str, List[Job]] = {}
    for job in jobs:
        by_vp.setdefault(job.vp, []).append(job)
    for vp_jobs in by_vp.values():
        ordered = sorted(vp_jobs, key=lambda j: j.seq)
        for earlier, later in zip(ordered, ordered[1:]):
            dag.add_edge(earlier.job_id, later.job_id)

    for job in jobs:
        for dep in job.depends_on:
            source = by_completion.get(id(dep))
            if source is not None:
                dag.add_edge(source, job.job_id)

    if not nx.is_directed_acyclic_graph(dag):  # pragma: no cover - invariant
        raise ValueError("job dependencies contain a cycle")
    return dag


def critical_path(dag: "nx.DiGraph") -> List[int]:
    """The duration-weighted longest path through the DAG (job ids)."""
    if dag.number_of_nodes() == 0:
        return []
    # Longest path by accumulated duration: dynamic programming over a
    # topological order (node weights, so classic dag_longest_path with
    # edge weights does not apply directly).
    best_len: Dict[int, float] = {}
    best_pred: Dict[int, Optional[int]] = {}
    for node in nx.topological_sort(dag):
        duration = dag.nodes[node]["duration"]
        incoming = [
            (best_len[pred] + duration, pred)
            for pred in dag.predecessors(node)
        ]
        if incoming:
            length, pred = max(incoming)
        else:
            length, pred = duration, None
        best_len[node] = length
        best_pred[node] = pred
    tail = max(best_len, key=best_len.get)
    path = [tail]
    while best_pred[path[-1]] is not None:
        path.append(best_pred[path[-1]])
    return list(reversed(path))


def analyze(jobs: Sequence[Job], duration_fn: DurationFn) -> ScheduleAnalysis:
    """Full analysis of a queue snapshot."""
    dag = build_dependency_dag(jobs, duration_fn)
    path = critical_path(dag)
    path_ms = sum(dag.nodes[node]["duration"] for node in path)

    engine_load: Dict[str, float] = {}
    for node, data in dag.nodes(data=True):
        if data["engine"] == "host":
            continue  # host bookkeeping does not occupy a hardware engine
        engine_load[data["engine"]] = (
            engine_load.get(data["engine"], 0.0) + data["duration"]
        )

    busiest = max(engine_load.values(), default=0.0)
    return ScheduleAnalysis(
        jobs=len(jobs),
        critical_path_ms=path_ms,
        critical_path=path,
        engine_load_ms=engine_load,
        makespan_lower_bound_ms=max(path_ms, busiest),
    )
