"""The Re-scheduler: dispatch-order policies over the Job Queue.

"The Re-scheduler has two functions.  First, it reorders the asynchronous
kernel jobs in the Job Queue by keeping a partial order in the original
VP.  It is a non-preemptive, optimal scheduler augmented for job
dependencies.  Second, it combines identical kernel requests in the Job
Queue into one single kernel job, by using Kernel Coalescing" (paper
Section 2).  This module implements the first function; the second lives
in :mod:`repro.core.coalescing`.

The partial-order invariant is enforced structurally: policies only ever
choose among each VP's *earliest* pending job (the dispatchable heads),
so jobs of one VP can never be reordered against each other, while jobs
of different VPs can.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .jobs import Job, JobKind


def engine_role(job: Job) -> str:
    """Which hardware engine a job occupies.

    On a multi-GPU host the role is qualified by the device the job is
    bound to (``job.device``), so each GPU's engines are balanced
    independently.
    """
    if job.kind is JobKind.COPY_H2D:
        role = "h2d"
    elif job.kind is JobKind.COPY_D2H:
        role = "d2h"
    elif job.kind is JobKind.KERNEL:
        role = "compute"
    else:
        return "host"  # malloc/free: host-side bookkeeping, no engine
    if job.device:
        return f"{role}@{job.device}"
    return role


@dataclass
class EngineBacklog:
    """Predicted outstanding work per engine, maintained by the dispatcher.

    The Re-scheduler "reorders the executions to reduce the wasted cycles
    across the two engines ... by using the expected time for each
    invocation" (paper Section 3) — these expected-time totals are what
    the interleaving policy balances.
    """

    per_engine: Dict[str, float] = field(default_factory=dict)

    def for_job(self, job: Job) -> float:
        return self.per_engine.get(engine_role(job), 0.0)

    def add(self, job: Job, expected_ms: float) -> None:
        role = engine_role(job)
        self.per_engine[role] = self.per_engine.get(role, 0.0) + expected_ms

    def retire(self, job: Job, expected_ms: float) -> None:
        role = engine_role(job)
        self.per_engine[role] = max(
            0.0, self.per_engine.get(role, 0.0) - expected_ms
        )


class SchedulingPolicy(abc.ABC):
    """Chooses the next job to dispatch among the dispatchable heads."""

    name: str = "abstract"

    @abc.abstractmethod
    def select(self, dispatchable: List[Job], backlog: EngineBacklog) -> Optional[Job]:
        """Pick the next job, or None to dispatch nothing right now."""

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__}>"


class FIFOPolicy(SchedulingPolicy):
    """Arrival order — the unoptimized baseline (paper Fig. 3a)."""

    name = "fifo"

    def select(self, dispatchable: List[Job], backlog: EngineBacklog) -> Optional[Job]:
        if not dispatchable:
            return None
        return min(dispatchable, key=lambda job: job.job_id)


class InterleavingPolicy(SchedulingPolicy):
    """Kernel Interleaving: keep both engines busy, rotate across VPs.

    Among the dispatchable per-VP heads the policy prefers

    1. jobs whose target engine has the smaller expected backlog (feed
       the starving engine — the mechanism of paper Fig. 3b), then
    2. the VP served least recently (fair rotation, which produces the
       copy/kernel pipelining of Fig. 4), then
    3. arrival order as the deterministic tie-break.
    """

    name = "interleaving"

    def __init__(self):
        self._last_served: Dict[str, int] = {}
        self._serve_counter = 0

    def select(self, dispatchable: List[Job], backlog: EngineBacklog) -> Optional[Job]:
        if not dispatchable:
            return None

        def rank(job: Job):
            return (
                backlog.for_job(job),
                self._last_served.get(job.vp, -1),
                job.job_id,
            )

        choice = min(dispatchable, key=rank)
        self._serve_counter += 1
        self._last_served[choice.vp] = self._serve_counter
        return choice


def make_policy(name: str) -> SchedulingPolicy:
    """Factory for the catalogued policies."""
    if name == "fifo":
        return FIFOPolicy()
    if name == "interleaving":
        return InterleavingPolicy()
    raise ValueError(f"unknown scheduling policy {name!r} (fifo, interleaving)")
