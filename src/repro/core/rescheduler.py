"""Backward-compatibility shim: the Re-scheduler moved to :mod:`repro.sched`.

"The Re-scheduler has two functions.  First, it reorders the
asynchronous kernel jobs in the Job Queue by keeping a partial order in
the original VP. ... Second, it combines identical kernel requests in
the Job Queue into one single kernel job, by using Kernel Coalescing"
(paper Section 2).  The first function now lives in the pluggable
scheduling layer — policies in :mod:`repro.sched.policies`, backlog
accounting in :mod:`repro.sched.backlog`, the name-keyed registry in
:mod:`repro.sched.registry` — and the second in
:mod:`repro.core.coalescing`.

Import from :mod:`repro.sched` in new code; this module keeps the old
import paths (``repro.core.rescheduler.FIFOPolicy`` and friends) alive.
"""

from __future__ import annotations

from ..sched.backlog import EngineBacklog, engine_role
from ..sched.policies import FIFOPolicy, InterleavingPolicy, SchedulingPolicy
from ..sched.registry import make_policy

__all__ = [
    "EngineBacklog",
    "FIFOPolicy",
    "InterleavingPolicy",
    "SchedulingPolicy",
    "engine_role",
    "make_policy",
]
