"""Kernel Match: detecting identical kernels across VPs.

The paper's Fig. 2 shows a *Kernel Match* submodule inside the
Re-scheduler: Kernel Coalescing only applies when "an identical kernel
is called by more than one VP", and since each VP runs its own
application binary, identity cannot rely on pointers or names — ΣVP has
to recognize that two submitted kernels are the *same code*.

This module provides that recognition structurally: a digest over the
kernel's control-flow blocks (names, per-type static instruction counts,
constant trip counts) and its declared element ratio.  Two kernels with
the same digest execute the same instructions over their data, which is
precisely the coalescing precondition; data sizes, footprints, and
launch geometry are deliberately excluded (coalesced launches differ in
exactly those).

Dynamic trip-count rules (callables) are compared by observed behaviour:
the rule is sampled at a few canonical launch contexts, so two kernels
whose loop bounds react identically to the launch match even when built
from distinct closure objects.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional, Tuple

from ..kernels.ir import ALL_TYPES, KernelIR, LaunchContext, ProgramBlock

#: Launch contexts at which callable trip-count rules are sampled.
_PROBE_CONTEXTS: Tuple[LaunchContext, ...] = (
    LaunchContext(elements=1 << 10, threads=1 << 8, problem_size=16.0),
    LaunchContext(elements=1 << 16, threads=1 << 12, problem_size=320.0),
    LaunchContext(elements=3 * 7 * 11 * 13, threads=501, problem_size=7.0),
)


def _block_tokens(block: ProgramBlock) -> Iterable[str]:
    yield f"block:{block.name}"
    for itype in ALL_TYPES:
        yield f"{itype.name}={block.mix[itype]:.9g}"
    if callable(block.trips):
        for index, ctx in enumerate(_PROBE_CONTEXTS):
            yield f"trips@{index}={block.trip_count(ctx):.9g}"
    else:
        yield f"trips={float(block.trips):.9g}"


def kernel_digest(kernel: KernelIR) -> str:
    """A stable identity for the kernel's *code* (not its data).

    Kernels with equal digests run the same instruction stream per
    element; merging their launches is functionally a batched launch.
    """
    cached = kernel.__dict__.get("_code_digest")
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    hasher.update(f"ept={kernel.elements_per_thread:.9g};".encode())
    hasher.update(f"coalescible={kernel.coalescible};".encode())
    for block in kernel.blocks:
        for token in _block_tokens(block):
            hasher.update(token.encode())
        hasher.update(b"|")
    digest = hasher.hexdigest()[:16]
    # KernelIR is frozen; stash the memo through object.__setattr__ (the
    # digest is a pure function of the kernel's immutable fields).
    object.__setattr__(kernel, "_code_digest", digest)
    return digest


def kernels_match(a: KernelIR, b: KernelIR) -> bool:
    """True when two kernels are the identical code (Fig. 2's box)."""
    return kernel_digest(a) == kernel_digest(b)


def match_key(kernel: KernelIR, block_size: int) -> Optional[tuple]:
    """The coalescing identity key: code digest plus launch block size.

    Returns None for kernels that opted out of coalescing.  The
    signature participates too, so deliberately distinct kernels that
    happen to share a structure (rare, but possible with synthetic
    kernels) are not merged behind the application's back; the digest
    catches same-code kernels that arrived under different signatures
    from different VP binaries.
    """
    if not kernel.coalescible:
        return None
    return (kernel_digest(kernel), block_size)
