"""Job requests and the host-side Job Queue.

Every CUDA call a virtual platform makes arrives on the host as a
:class:`Job` pushed into the :class:`JobQueue` by the IPC manager (paper
Fig. 2).  The Re-scheduler inspects and reorders/merges the queue under
one invariant: **per-VP partial order** — jobs from the same VP must
dispatch in their original sequence, while jobs from different VPs may be
freely reordered (paper Section 2: "reorders the asynchronous kernel jobs
in the Job Queue by keeping a partial order in the original VP").
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..caching import caches_enabled
from ..kernels.ir import KernelIR
from ..kernels.launch import LaunchConfig
from ..obs import metrics as _obs_metrics
from ..sim import Environment, Event


class JobKind(enum.Enum):
    """The operation a job asks the host GPU to perform."""

    MALLOC = "malloc"
    FREE = "free"
    COPY_H2D = "copy_h2d"
    COPY_D2H = "copy_d2h"
    KERNEL = "kernel"
    EVENT = "event"  # cudaEventRecord marker: timestamps stream progress

    def __repr__(self) -> str:
        return f"JobKind.{self.name}"


#: Job kinds the copy engine serves.
COPY_KINDS = (JobKind.COPY_H2D, JobKind.COPY_D2H)

_job_ids = itertools.count()

#: Sentinel marking a job's coalesce key as not yet computed (``None``
#: is a valid key value, meaning "not coalescible").
_KEY_UNSET = object()


@dataclass(slots=True)
class Job:
    """One GPU request from a VP, as seen by the host.

    ``slots=True``: jobs are allocated per CUDA call across every VP, so
    they are among the hottest objects of a simulation; slots cut both
    the per-instance memory and the attribute-access cost the dispatcher
    and coalescer pay on every scheduling decision.
    """

    vp: str
    seq: int
    kind: JobKind
    completion: Event
    # Copies:
    nbytes: int = 0
    handle: Optional[str] = None
    host_data: Optional[np.ndarray] = None
    sink: Optional[Callable[[Any], None]] = None
    # Kernels:
    kernel: Optional[KernelIR] = None
    launch: Optional[LaunchConfig] = None
    arg_handles: Sequence[str] = ()
    out_handle: Optional[str] = None
    params: Dict[str, Any] = field(default_factory=dict)
    # Mallocs:
    size: int = 0
    # Coalescing: a merged job lists the member jobs it stands for.
    members: List["Job"] = field(default_factory=list)
    # Cross-VP dependencies: events that must have fired before this job
    # may dispatch (used when a merged kernel keeps its members' copies
    # as individual jobs).
    depends_on: List[Event] = field(default_factory=list)
    # Multi-GPU hosts: index of the device this job is bound to (set by
    # the dispatcher from the VP's affinity, or by the coalescer for
    # merged jobs).  0 on single-GPU hosts.
    device: int = 0
    # Bookkeeping:
    sync: bool = True
    job_id: int = field(default_factory=lambda: next(_job_ids))
    submitted_at_ms: float = 0.0
    dispatched_at_ms: Optional[float] = None
    completed_at_ms: Optional[float] = None
    # Memoized coalesce key (kernel and launch are fixed at creation).
    _coalesce_key: Any = field(
        default=_KEY_UNSET, init=False, repr=False, compare=False
    )

    def __repr__(self) -> str:
        return (
            f"Job(#{self.job_id} {self.kind.name} vp={self.vp!r} seq={self.seq})"
        )

    @property
    def is_copy(self) -> bool:
        return self.kind in COPY_KINDS

    @property
    def is_kernel(self) -> bool:
        return self.kind is JobKind.KERNEL

    @property
    def coalesce_key(self) -> Optional[tuple]:
        """Identity key for Kernel Coalescing: same code, same geometry.

        Two kernel jobs coalesce when they run the *identical kernel*
        with the same block size — they then process different data
        chunks of one merged launch.  Identity is structural (the
        Kernel Match submodule of paper Fig. 2): each VP runs its own
        binary, so the match is on the kernel's code digest, not on a
        name the guests happen to share.
        """
        if self._coalesce_key is _KEY_UNSET:
            if not self.is_kernel or self.kernel is None or self.launch is None:
                self._coalesce_key = None
            else:
                from .kernel_match import match_key  # local: avoid import cycle

                self._coalesce_key = match_key(self.kernel, self.launch.block_size)
        return self._coalesce_key


class JobQueue:
    """The host-side queue of pending jobs.

    Plain-list storage (not a heap) because the Re-scheduler's whole
    purpose is to inspect and reorder it.  Consumers wait on
    :meth:`wait_for_job` events that fire whenever new work arrives.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._jobs: List[Job] = []
        self._arrival_waiters: List[Event] = []
        self._barriers: Dict[str, tuple] = {}
        self.total_enqueued = 0
        #: Bumped on every structural change; lets observers cache scans.
        self.version = 0
        # Version-keyed scan caches: the dispatcher and coalescer consult
        # heads/pending sets on every scheduling decision, usually many
        # times between structural changes.  Rebuilt lazily when
        # ``version`` moves (or on every call when caching is disabled).
        self._scan_version = -1
        self._heads: Dict[str, Job] = {}
        self._by_vp: Dict[str, List[Job]] = {}
        self._key_version = -1
        self._by_key: Dict[tuple, List[Job]] = {}

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self):
        return iter(self._jobs)

    @property
    def jobs(self) -> List[Job]:
        """Snapshot of pending jobs in current queue order."""
        return list(self._jobs)

    def put(self, job: Job) -> None:
        job.submitted_at_ms = self.env.now
        self._jobs.append(job)
        self.total_enqueued += 1
        self.version += 1
        registry = _obs_metrics.REGISTRY
        if registry is not None:
            registry.histogram(
                "jobqueue.depth", _obs_metrics.DEPTH_BUCKETS
            ).observe(len(self._jobs))
        waiters, self._arrival_waiters = self._arrival_waiters, []
        for waiter in waiters:
            waiter.succeed(job)

    def arrival_event(self) -> Event:
        """Event firing at the next :meth:`put` (strictly in the future)."""
        event = self.env.event()
        self._arrival_waiters.append(event)
        return event

    def remove(self, job: Job) -> None:
        try:
            self._jobs.remove(job)
        except ValueError:
            raise RuntimeError(f"{job!r} is not in the queue") from None
        self.version += 1

    def replace(self, members: Sequence[Job], merged: Job) -> None:
        """Swap ``members`` for one ``merged`` job at the earliest slot.

        The merged job takes the queue position of the earliest member so
        coalescing never delays work behind unrelated jobs.
        """
        if not members:
            raise ValueError("replace requires at least one member")
        indices = [self._jobs.index(m) for m in members]
        insert_at = min(indices)
        for member in members:
            self._jobs.remove(member)
        self._jobs.insert(min(insert_at, len(self._jobs)), merged)
        self.version += 1

    def set_barrier(self, vp: str, until: Event, exempt_below_seq: int = 0) -> None:
        """Block dispatching ``vp``'s jobs until ``until`` fires.

        Kernel Coalescing uses this: once a VP's jobs were absorbed into
        a merged triple, its *next* jobs must not overtake the merged
        stages still executing on the VP's behalf.  Jobs with
        ``seq < exempt_below_seq`` are exempt — they are the triple's own
        unmerged input copies, which the merged kernel waits for.
        """
        self._barriers[vp] = (until, exempt_below_seq)

    def barred(self, vp: str, seq: Optional[int] = None) -> bool:
        """True while ``vp`` is behind an active coalescing barrier."""
        barrier = self._barriers.get(vp)
        if barrier is None:
            return False
        until, exempt_below_seq = barrier
        if until.processed:
            del self._barriers[vp]
            return False
        if seq is not None and seq < exempt_below_seq:
            return False
        return True

    def _refresh_scan(self) -> None:
        """Rebuild the per-VP scan caches for the current queue version."""
        heads: Dict[str, Job] = {}
        by_vp: Dict[str, List[Job]] = {}
        for job in self._jobs:
            by_vp.setdefault(job.vp, []).append(job)
            head = heads.get(job.vp)
            if head is None or job.seq < head.seq:
                heads[job.vp] = job
        self._heads = heads
        self._by_vp = by_vp
        self._scan_version = self.version

    def heads_per_vp(self) -> Dict[str, Job]:
        """The earliest pending job of each VP — the dispatchable set.

        Dispatching only per-VP heads preserves the per-VP partial order
        by construction, whatever cross-VP order a policy picks.

        The returned mapping is a version-keyed cache shared between
        calls at the same queue version; treat it as read-only.
        """
        if self._scan_version != self.version or not caches_enabled():
            self._refresh_scan()
        return self._heads

    def pending_for(self, vp: str) -> List[Job]:
        """``vp``'s pending jobs in queue order (read-only cached list)."""
        if self._scan_version != self.version or not caches_enabled():
            self._refresh_scan()
        return self._by_vp.get(vp, [])

    def kernels_matching(self, key: tuple) -> List[Job]:
        """Pending kernel jobs with the given coalesce key."""
        if key is None:
            # Not a coalescible identity; the grouped cache below indexes
            # only real keys, so answer with the direct (seed) scan.
            return [job for job in self._jobs if job.coalesce_key is None]
        if self._key_version != self.version or not caches_enabled():
            by_key: Dict[tuple, List[Job]] = {}
            for job in self._jobs:
                job_key = job.coalesce_key
                if job_key is not None:
                    by_key.setdefault(job_key, []).append(job)
            self._by_key = by_key
            self._key_version = self.version
        return self._by_key.get(key, [])
