"""The Profiler: collects per-kernel execution information.

In the paper the profiler "is provided by the manufacturer" and "acquires
execution information such as the number of executed instructions (per
instruction type), the elapsed clock cycles, and the percentages of each
occurred stall" (Section 2).  Here it records the
:class:`~repro.gpu.timing.ExecutionProfile` of every kernel the
dispatcher runs on the host GPU, keyed by kernel name and VP, and offers
the aggregations the Time/Power Estimation module consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..gpu.timing import ExecutionProfile
from ..kernels.ir import ALL_TYPES, InstructionType
from .jobs import Job


@dataclass(frozen=True)
class ProfileRecord:
    """One kernel execution as the profiler saw it."""

    kernel_name: str
    vp: str
    job_id: int
    profile: ExecutionProfile
    coalesced_members: int


class Profiler:
    """Accumulates kernel execution profiles from the host GPU."""

    def __init__(self):
        self._records: List[ProfileRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def record(self, job: Job, profile: ExecutionProfile) -> ProfileRecord:
        record = ProfileRecord(
            kernel_name=profile.kernel_name,
            vp=job.vp,
            job_id=job.job_id,
            profile=profile,
            coalesced_members=len(job.members),
        )
        self._records.append(record)
        return record

    @property
    def records(self) -> List[ProfileRecord]:
        return list(self._records)

    def kernels_profiled(self) -> List[str]:
        return sorted({r.kernel_name for r in self._records})

    def records_for(self, kernel_name: str) -> List[ProfileRecord]:
        return [r for r in self._records if r.kernel_name == kernel_name]

    def last_profile(self, kernel_name: Optional[str] = None) -> Optional[ExecutionProfile]:
        for record in reversed(self._records):
            if kernel_name is None or record.kernel_name == kernel_name:
                return record.profile
        return None

    # -- aggregations ------------------------------------------------------

    def total_sigma(self, kernel_name: Optional[str] = None) -> Dict[InstructionType, float]:
        """Total executed instructions per type across matching records."""
        totals = {t: 0.0 for t in ALL_TYPES}
        for record in self._records:
            if kernel_name is not None and record.kernel_name != kernel_name:
                continue
            for itype, count in record.profile.sigma.items():
                totals[itype] += count
        return totals

    def total_elapsed_cycles(self, kernel_name: Optional[str] = None) -> float:
        return sum(
            r.profile.elapsed_cycles
            for r in self._records
            if kernel_name is None or r.kernel_name == kernel_name
        )

    def host_energy_mj(self, arch, kernel_name: Optional[str] = None) -> float:
        """Energy the *host* GPU spent executing the profiled kernels (mJ).

        Eq. (6)'s terms evaluated with the host architecture: static
        power over the summed elapsed time plus per-instruction and
        DRAM-access energies.  Useful for reporting what the simulation
        itself costs the host machine.
        """
        matching = [
            r for r in self._records
            if kernel_name is None or r.kernel_name == kernel_name
        ]
        energy_nj = 0.0
        elapsed_ms = 0.0
        for record in matching:
            profile = record.profile
            elapsed_ms += profile.time_ms
            for itype, count in profile.sigma.items():
                energy_nj += count * arch.instruction_energy_nj[itype]
            energy_nj += profile.cache_misses * arch.dram_access_energy_nj
        static_mj = arch.static_power_w * elapsed_ms / 1e3
        return energy_nj / 1e6 + static_mj

    def stall_summary(self, kernel_name: Optional[str] = None) -> Dict[str, float]:
        """Average stall percentages across matching records."""
        matching = [
            r for r in self._records
            if kernel_name is None or r.kernel_name == kernel_name
        ]
        if not matching:
            return {"data_dependency": 0.0, "other": 0.0}
        sums = {"data_dependency": 0.0, "other": 0.0}
        for record in matching:
            for reason, pct in record.profile.stall_breakdown().items():
                sums[reason] += pct
        return {reason: total / len(matching) for reason, total in sums.items()}
