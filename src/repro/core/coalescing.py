"""Kernel Coalescing (paper Section 3, Figs. 5 and 6).

"When multiple VP instances are running it is likely that an identical
kernel is called by more than one VP at the same time.  Such simulations
can be accelerated by coalescing those common invocations from each VP
into a single kernel invocation."

The coalescer operates on the Job Queue.  For each VP it recognises a
*triple* at the VP's queue head — host-to-device copies, an identical
kernel, and (if already submitted) device-to-host copies.  Triples from
different VPs with the same coalesce key (kernel signature + block size)
merge into one triple:

* the member buffers are re-bound to one physically-contiguous device
  region (Fig. 5), so a single kernel can sweep the merged data;
* one H2D copy moves the concatenated inputs (one DMA latency instead of
  N), one kernel launch covers the merged grid (one launch overhead, and
  a grid that aligns to the device's wave quantum — the data-alignment
  gain the paper highlights), and one D2H copy returns all results;
* each member job's completion fires when its merged stage completes,
  and the results are "properly divided to be copied ... back to the
  host memory addresses" through each member's sink.

Because matching requests from different VPs arrive within an IPC-latency
window rather than at one instant, the coalescer *holds* coalescible jobs
briefly (the reproduction's analog of VP control pausing platforms) and
merges when the group is complete or the window expires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..caching import caches_enabled
from ..gpu.device import HostGPU
from ..obs import metrics as _obs_metrics
from ..obs import tracer as _obs_trace
from ..sim import Environment
from .handles import HandleTable
from .jobs import Job, JobKind, JobQueue

#: Default time a coalescible job may be held waiting for its group, in
#: milliseconds.  Covers a few guest->host socket latencies so a VP's
#: whole (copy, kernel, copy) triple can arrive and match its peers.
DEFAULT_HOLD_WINDOW_MS = 2.5

#: Once the kernel group is complete, how long to wait for members'
#: still-in-flight D2H requests before merging without them (ms).
DEFAULT_SETTLE_MS = 0.1

#: Copies larger than this stay individual jobs even when their kernels
#: merge.  Merging a batch of large copies into one DMA saves only the
#: per-transfer latency but serializes what the dual copy engines would
#: otherwise pipeline against compute — a net loss above this size.
DEFAULT_COPY_MERGE_LIMIT_BYTES = 512 * 1024


@dataclass
class Triple:
    """One VP's (H2D*, KERNEL, D2H*) prefix at its queue head."""

    vp: str
    h2d: List[Job]
    kernel: Job
    d2h: List[Job]

    @property
    def key(self) -> tuple:
        return self.kernel.coalesce_key

    @property
    def jobs(self) -> List[Job]:
        return [*self.h2d, self.kernel, *self.d2h]


@dataclass
class CoalesceStats:
    """Counters describing what the coalescer did."""

    merges: int = 0
    kernels_coalesced: int = 0
    copies_merged: int = 0
    batch_sizes: List[int] = field(default_factory=list)


class KernelCoalescer:
    """Merges identical kernel requests from different VPs."""

    def __init__(
        self,
        env: Environment,
        gpu: HostGPU,
        handles: HandleTable,
        device_of=None,
        min_batch: int = 2,
        max_batch: int = 64,
        target_batch: Optional[int] = None,
        hold_window_ms: float = DEFAULT_HOLD_WINDOW_MS,
        settle_ms: float = DEFAULT_SETTLE_MS,
        copy_merge_limit_bytes: int = DEFAULT_COPY_MERGE_LIMIT_BYTES,
    ):
        if min_batch < 2:
            raise ValueError(f"min_batch must be >= 2, got {min_batch}")
        if max_batch < min_batch:
            raise ValueError("max_batch must be >= min_batch")
        self.env = env
        self.gpu = gpu
        #: Maps a VP name to its host-GPU index; wired by the framework
        #: on multi-GPU hosts so triples never merge across devices.
        self.device_of = device_of or (lambda vp: 0)
        #: Maps a VP name to its currently executing job (or None); wired
        #: by the dispatcher.  A merged kernel must wait out members'
        #: in-flight transfers — see :meth:`_merge_batch`.
        self.inflight_of = lambda vp: None
        #: GPUs indexed by device; extended by the framework.
        self.gpus = [gpu]
        self.handles = handles
        self.min_batch = min_batch
        self.max_batch = max_batch
        self.target_batch = target_batch
        self.hold_window_ms = hold_window_ms
        self.settle_ms = settle_ms
        self.copy_merge_limit_bytes = copy_merge_limit_bytes
        self.stats = CoalesceStats()
        self._merge_counter = 0
        # Version-keyed triple cache: the dispatcher asks for the triple
        # grouping on every scheduling decision (``hold_deadline`` per
        # candidate plus one ``coalesce_pass`` per loop), but the answer
        # only changes when the queue does.  The ``JobQueue.version``
        # counter exists for exactly this observer pattern.
        self._triples_version = -1
        self._triples_queue: Optional[JobQueue] = None
        self._triples_cache: Dict[tuple, List[Triple]] = {}

    def declare_domain_edges(self, plan) -> None:
        """Declare coalescing-window edges for a sharded simulation plan.

        A merge joins requests from several VP domains; the soonest a new
        arrival can alter an open group's fate is the settle window after
        the previous arrival, so the settle period bounds cross-domain
        reaction time at the coalescing boundary.
        """
        plan.declare_edge(
            "vp:*", "dispatcher:host", self.settle_ms, kind="coalesce-window"
        )

    # -- triple discovery --------------------------------------------------

    def find_triples(self, queue: JobQueue) -> Dict[tuple, List[Triple]]:
        """Group each VP's head triple by coalesce key.

        The grouping is pure in the queue contents, so it is cached
        against :attr:`JobQueue.version` and recomputed only after a
        structural change (treat the result as read-only).
        """
        if (
            caches_enabled()
            and self._triples_queue is queue
            and self._triples_version == queue.version
        ):
            return self._triples_cache
        groups = self._scan_triples(queue)
        self._triples_queue = queue
        self._triples_version = queue.version
        self._triples_cache = groups
        return groups

    def _scan_triples(self, queue: JobQueue) -> Dict[tuple, List[Triple]]:
        groups: Dict[tuple, List[Triple]] = {}
        vps = {job.vp for job in queue}
        for vp in sorted(vps):
            triple = self._head_triple(queue.pending_for(vp))
            if triple is None or triple.key is None:
                continue
            if triple.kernel.members or any(j.members for j in triple.jobs):
                continue  # already a merged triple: never re-coalesce
            device = self.device_of(vp)
            groups.setdefault((*triple.key, device), []).append(triple)
        return groups

    @staticmethod
    def _head_triple(pending: Sequence[Job]) -> Optional[Triple]:
        """Parse H2D*, KERNEL, D2H* at the head of one VP's pending jobs."""
        h2d: List[Job] = []
        index = 0
        while index < len(pending) and pending[index].kind is JobKind.COPY_H2D:
            h2d.append(pending[index])
            index += 1
        if index >= len(pending) or not pending[index].is_kernel:
            return None
        kernel = pending[index]
        index += 1
        d2h: List[Job] = []
        while index < len(pending) and pending[index].kind is JobKind.COPY_D2H:
            d2h.append(pending[index])
            index += 1
        return Triple(vp=kernel.vp, h2d=h2d, kernel=kernel, d2h=d2h)

    # -- hold decision -----------------------------------------------------

    def _goal_batch(self) -> int:
        if self.target_batch is not None:
            return min(self.target_batch, self.max_batch)
        return self.max_batch

    def _group_state(self, triples: List[Triple]):
        """(ready_to_merge, wake_deadline_or_None) for one key's group.

        A group merges when (a) it has reached the goal batch size *and*
        every member's D2H either arrived or the short settle window
        passed, or (b) the hold window since the group's first kernel
        expired (merge whatever gathered, if at least ``min_batch``).
        """
        now = self.env.now
        first_arrival = min(t.kernel.submitted_at_ms for t in triples)
        window_deadline = first_arrival + self.hold_window_ms
        if len(triples) >= self._goal_batch():
            if all(t.d2h for t in triples):
                return True, None
            last_arrival = max(t.kernel.submitted_at_ms for t in triples)
            settle_deadline = min(last_arrival + self.settle_ms, window_deadline)
            if now >= settle_deadline:
                return True, None
            return False, settle_deadline
        if now >= window_deadline:
            return len(triples) >= self.min_batch, None
        return False, window_deadline

    def hold_deadline(self, queue: JobQueue, job: Job) -> Optional[float]:
        """If ``job`` should wait for coalescing, when its hold expires.

        Returns None when the job should dispatch normally: either it is
        not part of a coalescible group, or its group is ready to merge
        right now (the merge happens in the same dispatcher pass).
        """
        for triples in self.find_triples(queue).values():
            group_jobs = {j.job_id for t in triples for j in t.jobs}
            if job.job_id not in group_jobs:
                continue
            ready, deadline = self._group_state(triples)
            if ready:
                return None
            return deadline
        return None

    # -- the merge -----------------------------------------------------------

    def coalesce_pass(self, queue: JobQueue) -> List[Job]:
        """Merge every ready group in the queue; returns merged jobs."""
        if _obs_metrics.REGISTRY is not None:
            with _obs_metrics.timed("coalesce.pass"):
                return self._coalesce_pass(queue)
        return self._coalesce_pass(queue)

    def _coalesce_pass(self, queue: JobQueue) -> List[Job]:
        merged_jobs: List[Job] = []
        for _key, triples in sorted(self.find_triples(queue).items()):
            ready, _deadline = self._group_state(triples)
            if not ready:
                continue
            while len(triples) >= self.min_batch:
                batch = triples[: self.max_batch]
                triples = triples[self.max_batch :]
                if len(batch) < self.min_batch:
                    break
                merged_jobs.extend(self._merge_batch(queue, batch))
        return merged_jobs

    def _merge_batch(self, queue: JobQueue, batch: List[Triple]) -> List[Job]:
        """Replace a batch of triples with one merged triple."""
        self._merge_counter += 1
        group = f"coalesced#{self._merge_counter}"
        device = self.device_of(batch[0].vp)
        self.stats.merges += 1
        self.stats.kernels_coalesced += len(batch)
        self.stats.batch_sizes.append(len(batch))
        tracer = _obs_trace.TRACER
        if tracer is not None:
            tracer.instant(
                "coalescer", "merge", self.env.now, cat="sched",
                args={
                    "group": group,
                    "batch": len(batch),
                    "kernel": batch[0].kernel.kernel.name
                    if batch[0].kernel.kernel is not None else None,
                    "vps": ",".join(sorted(t.vp for t in batch)),
                    "device": device,
                },
            )
        registry = _obs_metrics.REGISTRY
        if registry is not None:
            registry.counter("coalesce.live_merges").inc()
            registry.histogram(
                "coalesce.live_batch_size", _obs_metrics.DEPTH_BUCKETS
            ).observe(len(batch))

        self._relayout_buffers(batch, owner=group)

        merged: List[Job] = []
        seq = 0

        def mergeable_copies(jobs: List[Job]) -> bool:
            return bool(jobs) and all(
                j.nbytes <= self.copy_merge_limit_bytes for j in jobs
            )

        h2d_members = [job for triple in batch for job in triple.h2d]
        h2d_merged = mergeable_copies(h2d_members)
        if h2d_merged:
            self.stats.copies_merged += len(h2d_members)
            job = Job(
                vp=group,
                seq=seq,
                kind=JobKind.COPY_H2D,
                completion=self.env.event(),
                nbytes=sum(j.nbytes for j in h2d_members),
                sync=False,
                device=device,
            )
            job.members = h2d_members
            queue.replace(h2d_members, job)
            merged.append(job)
            seq += 1

        kernel_members = [triple.kernel for triple in batch]
        merged_kernel = self._merged_kernel_job(group, seq, kernel_members)
        merged_kernel.device = device
        depends_on = []
        if h2d_members and not h2d_merged:
            # Large input copies stay individual (and pipelined); the
            # merged kernel must still wait for all of them.
            depends_on.extend(j.completion for j in h2d_members)
        for triple in batch:
            # A member VP whose input copy is already *on an engine* has
            # no queued H2D left, so its triple is a bare (kernel, d2h)
            # pair — but the merged kernel still sweeps that VP's
            # buffers and must not run before the transfer lands.  The
            # merged job's fresh group vp bypasses the per-VP inflight
            # admission check, so the ordering has to be an explicit
            # dependency.  Only input copies matter: an in-flight D2H
            # reads a buffer the relayout already snapshotted, so
            # waiting on it would only serialize unrelated pipelining.
            inflight = self.inflight_of(triple.vp)
            if inflight is not None and inflight.kind is JobKind.COPY_H2D:
                depends_on.append(inflight.completion)
        if depends_on:
            merged_kernel.depends_on = depends_on
        queue.replace(kernel_members, merged_kernel)
        merged.append(merged_kernel)
        seq += 1

        d2h_members = [job for triple in batch for job in triple.d2h]
        if mergeable_copies(d2h_members):
            self.stats.copies_merged += len(d2h_members)
            job = Job(
                vp=group,
                seq=seq,
                kind=JobKind.COPY_D2H,
                completion=self.env.event(),
                nbytes=sum(j.nbytes for j in d2h_members),
                sync=False,
                device=device,
            )
            job.members = d2h_members
            queue.replace(d2h_members, job)
            merged.append(job)
        # Unmerged D2H members stay queued behind the merged kernel via
        # their VP's barrier, so ordering is preserved without deps.

        # A member VP's subsequent jobs must not overtake the merged
        # stages acting on its behalf.
        final_stage = merged[-1]
        for triple in batch:
            queue.set_barrier(
                triple.vp,
                final_stage.completion,
                exempt_below_seq=triple.kernel.seq,
            )
        return merged

    def _merged_kernel_job(self, group: str, seq: int, members: List[Job]) -> Job:
        """Build the single kernel job covering every member's data."""
        first = members[0]
        launch = first.launch
        footprint = first.kernel.footprint
        for member in members[1:]:
            launch = launch.merged_with(member.launch)
            footprint = footprint.merged(member.kernel.footprint)
        kernel = first.kernel.with_footprint(footprint)

        job = Job(
            vp=group,
            seq=seq,
            kind=JobKind.KERNEL,
            completion=self.env.event(),
            kernel=kernel,
            launch=launch,
            sync=False,
        )
        job.members = members
        return job

    def _relayout_buffers(self, batch: List[Triple], owner: str) -> None:
        """Re-bind every member buffer into one contiguous region (Fig. 5)."""
        gpu = self.gpus[self.device_of(batch[0].vp)]
        handles: List[str] = []
        for triple in batch:
            for handle in (*triple.kernel.arg_handles, triple.kernel.out_handle):
                if handle and handle in self.handles and handle not in handles:
                    handles.append(handle)
        if not handles:
            return
        sizes = [self.handles.buffer(h).size for h in handles]
        try:
            new_buffers = gpu.malloc_contiguous(sizes, owner=owner)
        except Exception:
            return  # fragmented device memory: keep original layout
        for handle, new_buffer in zip(handles, new_buffers):
            old = self.handles.rebind(handle, new_buffer)
            gpu.free(old)
