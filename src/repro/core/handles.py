"""Device-memory handle table.

A VP never sees raw host-GPU addresses: its ``cudaMalloc`` returns an
opaque handle which the host maps to an actual device buffer.  The
indirection is what lets Kernel Coalescing transparently *re-bind* a VP's
data to a physically-contiguous region (paper Fig. 5) without the guest
noticing.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from ..gpu.memory import DeviceBuffer


class HandleTable:
    """Maps opaque guest handles to host device buffers."""

    def __init__(self):
        self._buffers: Dict[str, DeviceBuffer] = {}
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._buffers)

    def __contains__(self, handle: str) -> bool:
        return handle in self._buffers

    def new_handle(self, vp: str) -> str:
        """Mint a fresh, unbound handle for ``vp``."""
        return f"{vp}/buf{next(self._counter)}"

    def bind(self, handle: str, buffer: DeviceBuffer) -> None:
        if handle in self._buffers:
            raise ValueError(f"handle {handle!r} is already bound")
        self._buffers[handle] = buffer

    def rebind(self, handle: str, buffer: DeviceBuffer) -> DeviceBuffer:
        """Point ``handle`` at a new buffer; returns the old one.

        Payload moves with the handle so functional state survives the
        coalescer's re-layout.
        """
        old = self.buffer(handle)
        buffer.payload = old.payload
        self._buffers[handle] = buffer
        return old

    def buffer(self, handle: str) -> DeviceBuffer:
        try:
            return self._buffers[handle]
        except KeyError:
            raise KeyError(f"unbound device handle {handle!r}") from None

    def release(self, handle: str) -> DeviceBuffer:
        try:
            return self._buffers.pop(handle)
        except KeyError:
            raise KeyError(f"unbound device handle {handle!r}") from None

    def handles_for(self, vp: str) -> List[str]:
        prefix = f"{vp}/"
        return sorted(h for h in self._buffers if h.startswith(prefix))
