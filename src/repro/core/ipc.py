"""The Inter-Process Communication manager and VP control.

"The IPC Manager allows the virtual embedded GPUs and the host GPU to
communicate through an IPC method such as socket or shared memory.
Inside the IPC manager, there is a submodule, named VP control, that
stops and resumes the VPs to support the Kernel Interleaving optimization
technique for synchronous kernel invocations" (paper Section 2).

Every request a VP makes crosses the guest/host boundary, paying the
transport's per-message latency plus payload-proportional transfer time.
The two catalogued transports are the ones the paper names: a socket
(higher latency — calibrated so SigmaVP's Table 1 overhead lands at
~3.3x native) and shared memory (the cheaper alternative, benchmarked in
the ablation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol

from ..obs import metrics as _obs_metrics
from ..obs import tracer as _obs_trace
from ..sim import Environment
from .jobs import Job, JobQueue


@dataclass(frozen=True)
class IPCTransport:
    """A guest/host communication mechanism.

    ``zero_copy`` marks transports where payloads never cross the
    channel: the guest's memory is directly visible to the host (QEMU
    guest RAM *is* host memory), so a shared-memory transport passes a
    descriptor and the host copy engine DMAs straight from the source.
    Socket transports must stream the payload through the channel.
    """

    name: str
    latency_ms: float
    bandwidth_gbps: float
    zero_copy: bool = False

    def __post_init__(self) -> None:
        if self.latency_ms < 0:
            raise ValueError(f"{self.name}: latency must be non-negative")
        if self.bandwidth_gbps <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")

    def transfer_ms(self, payload_bytes: int) -> float:
        """One message: fixed latency plus payload streaming time."""
        if payload_bytes < 0:
            raise ValueError(f"negative payload {payload_bytes}")
        if self.zero_copy:
            payload_bytes = 0
        return self.latency_ms + (payload_bytes / 1e9) / self.bandwidth_gbps * 1e3


#: Guest/host socket (e.g. QEMU virtio-serial / TCP loopback).
SOCKET = IPCTransport(name="socket", latency_ms=0.55, bandwidth_gbps=2.0)

#: Shared-memory ring between the virtual GPU model and the host server:
#: descriptors only, payloads read in place.
SHARED_MEMORY = IPCTransport(
    name="shared-memory", latency_ms=0.03, bandwidth_gbps=6.0, zero_copy=True
)


class Stoppable(Protocol):
    """What VP control needs from a virtual platform: stop/resume."""

    name: str

    def stop(self) -> None: ...  # noqa: E704

    def resume(self) -> None: ...  # noqa: E704


class VPControl:
    """Stops and resumes virtual platforms (for synchronous interleaving)."""

    def __init__(self):
        self._vps: Dict[str, Stoppable] = {}
        self._stopped: Dict[str, bool] = {}

    def register(self, vp: Stoppable) -> None:
        if vp.name in self._vps:
            raise ValueError(f"VP {vp.name!r} is already registered")
        self._vps[vp.name] = vp
        self._stopped[vp.name] = False

    def registered(self) -> List[str]:
        return sorted(self._vps)

    def is_stopped(self, name: str) -> bool:
        return self._stopped.get(name, False)

    def stop(self, name: str) -> None:
        vp = self._require(name)
        if not self._stopped[name]:
            vp.stop()
            self._stopped[name] = True
            self._mark("vp.stop", vp)

    def resume(self, name: str) -> None:
        vp = self._require(name)
        if self._stopped[name]:
            vp.resume()
            self._stopped[name] = False
            self._mark("vp.resume", vp)

    @staticmethod
    def _mark(event: str, vp: Stoppable) -> None:
        """Record a stop/resume decision with the VP's own clock."""
        tracer = _obs_trace.TRACER
        if tracer is not None:
            env = getattr(vp, "env", None)
            tracer.instant(
                "vp-control", event,
                env.now if env is not None else 0.0,
                cat="sched", args={"vp": vp.name},
            )
        registry = _obs_metrics.REGISTRY
        if registry is not None:
            registry.counter(f"vpcontrol.{event.rpartition('.')[2]}s").inc()

    def resume_all(self) -> None:
        for name in self._vps:
            self.resume(name)

    def _require(self, name: str) -> Stoppable:
        try:
            return self._vps[name]
        except KeyError:
            raise KeyError(f"VP {name!r} is not registered with VP control") from None


class IPCManager:
    """Moves job requests from the VPs into the host Job Queue."""

    def __init__(
        self,
        env: Environment,
        queue: JobQueue,
        transport: IPCTransport = SOCKET,
    ):
        self.env = env
        self.queue = queue
        self.transport = transport
        self.vp_control = VPControl()
        self.messages_sent = 0
        self.bytes_transferred = 0

    def __repr__(self) -> str:
        return (
            f"<IPCManager transport={self.transport.name} "
            f"messages={self.messages_sent}>"
        )

    def declare_domain_edges(self, plan) -> None:
        """Declare guest↔host edges for a sharded simulation plan.

        Every message between a VP domain and the host domain pays at
        least the transport's fixed latency, in both directions — the
        dominant lookahead source of a ΣVP scenario (0.55 ms for the
        socket transport, 0.03 ms for shared memory).
        """
        latency = self.transport.latency_ms
        plan.declare_edge("vp:*", "dispatcher:host", latency, kind="ipc-submit")
        plan.declare_edge("dispatcher:host", "vp:*", latency, kind="ipc-respond")

    def submit(self, job: Job, payload_bytes: int = 0):
        """Generator: deliver ``job`` to the host queue over the transport.

        H2D copies ship their payload across the IPC channel (the guest
        has the data); other requests are small control messages.
        """
        delay = self.transport.transfer_ms(payload_bytes)
        self.messages_sent += 1
        self.bytes_transferred += payload_bytes
        started = self.env.now
        yield self.env.timeout(delay)
        tracer = _obs_trace.TRACER
        if tracer is not None:
            tracer.span(
                f"ipc/{self.transport.name}", "submit",
                started, self.env.now, cat="ipc",
                args={
                    "vp": job.vp, "job": job.job_id,
                    "kind": job.kind.name, "bytes": payload_bytes,
                },
            )
        self.queue.put(job)

    def respond(self, payload_bytes: int = 0, vp: Optional[str] = None):
        """Generator: the host->guest completion notification."""
        delay = self.transport.transfer_ms(payload_bytes)
        self.messages_sent += 1
        self.bytes_transferred += payload_bytes
        started = self.env.now
        yield self.env.timeout(delay)
        tracer = _obs_trace.TRACER
        if tracer is not None:
            tracer.span(
                f"ipc/{self.transport.name}", "respond",
                started, self.env.now, cat="ipc",
                args={"vp": vp, "bytes": payload_bytes},
            )
