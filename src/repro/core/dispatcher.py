"""The Job Dispatcher: executes Job Queue entries on the host GPU.

"The Job Dispatcher links the requests to the GPU driver library on the
host machine and invokes the physical GPU instructions based on the
requests in the Job Queue" (paper Section 2).

Two service disciplines are provided:

* :attr:`ServiceMode.SERIAL` — the unoptimized prototype: one request is
  served to completion before the next is fetched, in arrival order.
  This is the baseline against which Kernel Interleaving's Eq. (7)/(8)
  gains are defined (3N phases fully serialized).
* :attr:`ServiceMode.PIPELINED` — optimized multiplexing: jobs flow to
  the three hardware engines concurrently.  Engine queues are kept
  shallow (one op executing, at most one queued) so the scheduling
  policy re-decides at every slot — that is what lets a late-arriving
  D2H overtake queued H2Ds and form the interleaved schedule of Fig. 3b.

Per-VP partial order is preserved structurally: only each VP's earliest
pending job is dispatchable, and a VP never has two jobs in flight (the
stream-pump semantics of a per-VP CUDA stream).

Scheduling decisions themselves live in :mod:`repro.sched`: the
dispatcher is a thin engine-facing executor that consults a
:class:`~repro.sched.SchedulerPipeline` (admission → hold/merge →
select → place) for *what* to run next and then runs it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..backend.api import ExecutionBackend
from ..backend.registry import default_backend
from ..gpu import vectimes as _vectimes
from ..gpu.device import HostGPU
from ..gpu.engines import Engine
from ..kernels.compiler import CompiledKernel
from ..kernels.launch import LaunchConfig
from ..kernels.functional import (
    REGISTRY,
    FunctionalRegistry,
    batching_enabled,
)
from ..obs import metrics as _obs_metrics
from ..obs import tracer as _obs_trace
from ..sched.backlog import EngineBacklog, engine_role
from ..sched.config import (
    DEFAULT_HOST_CALL_MS,
    DEFAULT_PROFILING_OVERHEAD_MS,
    SchedulerConfig,
)
from ..sched.pipeline import SchedulerPipeline
from ..sched.placement import PlacementStrategy, RoundRobinPlacement
from ..sched.policies import SchedulingPolicy
from ..sim import Environment, Event
from .coalescing import KernelCoalescer
from .handles import HandleTable
from .jobs import Job, JobKind, JobQueue
from .profiler import Profiler

#: Default host-side time to service a malloc/free request — kept as a
#: module name for backward compatibility; the live value is
#: ``SchedulerConfig.host_call_ms``.
HOST_CALL_MS = DEFAULT_HOST_CALL_MS

#: Default host-side profiling cost charged per kernel *job*; the live
#: value is ``SchedulerConfig.profiling_overhead_ms``.
PROFILING_OVERHEAD_MS = DEFAULT_PROFILING_OVERHEAD_MS


class ServiceMode(enum.Enum):
    SERIAL = "serial"
    PIPELINED = "pipelined"


@dataclass
class DispatchStats:
    """Counters the experiments and tests read."""

    dispatched: Dict[JobKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in JobKind}
    )
    completed: int = 0
    busy_waits: int = 0
    #: Coalesced kernel jobs whose functional effect ran as ONE stacked
    #: numpy op (and how many member launches that one op covered) vs.
    #: merged jobs that fell back to the per-VP loop.  Host-side
    #: execution strategy only — simulated timing never reads these.
    batched_launches: int = 0
    batched_members: int = 0
    fallback_launches: int = 0

    def total_dispatched(self) -> int:
        return sum(self.dispatched.values())


class JobDispatcher:
    """Pulls jobs from the queue and runs them on the host GPU."""

    def __init__(
        self,
        env: Environment,
        gpu: HostGPU,
        queue: JobQueue,
        handles: HandleTable,
        policy: SchedulingPolicy,
        mode: ServiceMode = ServiceMode.PIPELINED,
        coalescer: Optional[KernelCoalescer] = None,
        registry: FunctionalRegistry = REGISTRY,
        profiler: Optional[Profiler] = None,
        extra_gpus: Optional[List[HostGPU]] = None,
        placement: Optional[PlacementStrategy] = None,
        config: Optional[SchedulerConfig] = None,
        backend: Optional[ExecutionBackend] = None,
    ):
        self.env = env
        self.gpu = gpu
        #: All host GPUs this dispatcher multiplexes ("SigmaVP multiplexes
        #: the host GPUs", paper Section 2).  VPs get a device affinity
        #: via the placement strategy on their first request; their
        #: buffers and kernels stay on that device.
        self.gpus: List[HostGPU] = [gpu, *(extra_gpus or [])]
        self.queue = queue
        self.handles = handles
        self.policy = policy
        self.mode = mode
        self.coalescer = coalescer
        self.registry = registry
        #: The execution backend every functional effect routes through
        #: (launches, batched launches, H2D/D2H payload movement).
        self.backend = backend if backend is not None else default_backend(registry)
        self.profiler = profiler
        self.config = config if config is not None else SchedulerConfig()
        self.backlog = EngineBacklog(debug=self.config.debug_enabled)
        #: The four-stage dispatch pipeline this executor consults
        #: (admission → hold/merge → select → place).
        self.pipeline = SchedulerPipeline(
            policy,
            placement if placement is not None else RoundRobinPlacement(),
            self.backlog,
            n_devices=len(self.gpus),
            coalescer=coalescer,
            engine_has_room=self._engine_has_room,
            expected_ms=self._expected_ms,
        )
        self.stats = DispatchStats()
        #: Every job this dispatcher completed, in completion order
        #: (members of merged jobs included) — the accounting source.
        self.completed_log: List[Job] = []
        self._inflight: Dict[str, Job] = {}
        if coalescer is not None:
            # The coalescer must see in-flight jobs: a merged kernel may
            # not sweep a member VP's buffers while that VP's copy is
            # still on an engine (its triple then has no queued H2D, so
            # queue-level ordering alone cannot protect it).
            coalescer.inflight_of = self.inflight_for
        self._wake: Event = env.event()
        self._process = env.process(self._run(), label="dispatcher:host/run")

    def __repr__(self) -> str:
        return (
            f"<JobDispatcher mode={self.mode.value} policy={self.policy.name} "
            f"inflight={len(self._inflight)}>"
        )

    # -- engine mapping ----------------------------------------------------

    def device_index_for(self, vp: str) -> int:
        """The device a VP is bound to (placement strategy, first use)."""
        return self.pipeline.placer.device_for(vp, self.backlog)

    def inflight_for(self, vp: str) -> Optional[Job]:
        """The job a VP currently has executing on an engine, if any."""
        return self._inflight.get(vp)

    def _gpu_of(self, job: Job) -> HostGPU:
        return self.gpus[job.device]

    def _engine_for(self, job: Job) -> Optional[Engine]:
        gpu = self._gpu_of(job)
        if job.kind is JobKind.COPY_H2D:
            return gpu.h2d_engine
        if job.kind is JobKind.COPY_D2H:
            return gpu.d2h_engine
        if job.kind is JobKind.KERNEL:
            return gpu.compute_engine
        return None

    def _engine_has_room(self, job: Job) -> bool:
        """Keep engine queues shallow so the policy re-decides per slot."""
        engine = self._engine_for(job)
        if engine is None:
            return True
        return engine.queued == 0

    # -- main loop -------------------------------------------------------------

    def _run(self):
        while True:
            merged = self.pipeline.hold.merge(self.queue)
            if merged:
                self._prewarm_merged(merged)

            decision = self.pipeline.decide(
                self.queue, self._inflight, self.env.now
            )
            job = decision.job
            if job is None:
                yield self._idle_event(decision.hold_deadline)
                continue

            self.queue.remove(job)
            expected = self._expected_ms(job)
            self.backlog.add(job, expected)
            self._inflight[job.vp] = job
            self.stats.dispatched[job.kind] += 1
            registry = _obs_metrics.REGISTRY
            if registry is not None:
                registry.counter(f"dispatch.kind.{job.kind.name}").inc()
                registry.histogram(
                    "jobqueue.depth_at_dispatch", _obs_metrics.DEPTH_BUCKETS
                ).observe(len(self.queue))
            # Labeled by bound device so sharded environments keep a
            # job's execution events on its device's domain heap.
            execution = self.env.process(
                self._execute(job, expected),
                label=f"gpu:{job.device}/execute({job.vp}#{job.seq})",
            )
            if self.mode is ServiceMode.SERIAL:
                yield execution

    def _prewarm_merged(self, merged: List[Job]) -> None:
        """Batch-compute timing profiles for freshly merged kernel jobs.

        Every coalescing pass mints brand-new merged :class:`KernelIR`
        objects, so their profiles always miss the id-keyed memo and
        would otherwise be computed one scalar walk at a time as each
        job reaches ``_expected_ms``/``_execute``.  With vectorized
        timing enabled we instead price the whole coalescing window's
        misses as one array program.  Timing results are bit-identical
        either way (the vectorized engine is digest-proven against the
        scalar reference); this only changes *when* profiles enter the
        cache.
        """
        if not _vectimes.vectimes_enabled():
            return
        pending: Dict[int, List[Tuple[CompiledKernel, LaunchConfig]]] = {}
        for job in merged:
            if not job.is_kernel or job.kernel is None or job.launch is None:
                continue
            gpu = self._gpu_of(job)
            compiled = gpu.compiler.compile(job.kernel, gpu.arch)
            if gpu.timing.profile_cached(compiled, job.launch):
                continue
            pending.setdefault(job.device, []).append((compiled, job.launch))
        for device, items in pending.items():
            # A singleton miss gains nothing from array form — leave it
            # to the scalar path it would hit anyway.
            if len(items) >= 2:
                self.gpus[device].timing.execute_batch(items)

    def _idle_event(self, hold_deadline: Optional[float]) -> Event:
        """Event that fires when dispatching might become possible again."""
        self.stats.busy_waits += 1
        events = [self.queue.arrival_event(), self._wake]
        if hold_deadline is not None and hold_deadline > self.env.now:
            events.append(self.env.timeout(hold_deadline - self.env.now))
        return self.env.any_of(events)

    def _signal(self) -> None:
        wake, self._wake = self._wake, self.env.event()
        wake.succeed()

    # -- job execution -------------------------------------------------------------

    def _expected_ms(self, job: Job) -> float:
        gpu = self._gpu_of(job)
        if job.kind is JobKind.EVENT:
            return 0.0
        if job.kind in (JobKind.MALLOC, JobKind.FREE):
            return self.config.host_call_ms
        if job.is_copy:
            return gpu.arch.copy_time_ms(job.nbytes)
        assert job.is_kernel
        compiled = gpu.compiler.compile(job.kernel, gpu.arch)
        return self.config.profiling_overhead_ms + gpu.timing.kernel_time_ms(
            compiled, job.launch
        )

    def _execute(self, job: Job, expected_ms: float):
        job.dispatched_at_ms = self.env.now
        gpu = self._gpu_of(job)
        try:
            if job.kind is JobKind.EVENT:
                # A record point: deliver the stream timestamp.
                yield self.env.timeout(0.0)
                if job.sink is not None:
                    job.sink(self.env.now)
            elif job.kind is JobKind.MALLOC:
                yield self.env.timeout(self.config.host_call_ms)
                buffer = gpu.malloc(job.size, owner=job.vp)
                self.handles.bind(job.handle, buffer)
            elif job.kind is JobKind.FREE:
                yield self.env.timeout(self.config.host_call_ms)
                gpu.free(self.handles.release(job.handle))
            elif job.kind is JobKind.COPY_H2D:
                yield self._run_on_engine(
                    gpu.h2d_engine, job, expected_ms, self._apply_h2d(job)
                )
                gpu.bytes_copied_h2d += job.nbytes
            elif job.kind is JobKind.COPY_D2H:
                yield self._run_on_engine(
                    gpu.d2h_engine, job, expected_ms, self._apply_d2h(job)
                )
                gpu.bytes_copied_d2h += job.nbytes
            elif job.kind is JobKind.KERNEL:
                compiled = gpu.compiler.compile(job.kernel, gpu.arch)
                profile = gpu.timing.execute(compiled, job.launch)
                if self.profiler is not None:
                    self.profiler.record(job, profile)
                yield self._run_on_engine(
                    gpu.compute_engine, job, expected_ms, self._apply_kernel(job)
                )
            else:  # pragma: no cover - enum is exhaustive
                raise RuntimeError(f"unhandled job kind {job.kind}")
        except BaseException as exc:
            # Surface the failure to the requesting VP (e.g. device OOM),
            # mirroring a CUDA error return.
            job.completion.fail(exc)
            raise
        finally:
            self.backlog.retire(job, expected_ms)
            self._inflight.pop(job.vp, None)
            self._signal()
        self._complete(job)

    def _run_on_engine(self, engine: Engine, job: Job, duration_ms: float, apply):
        metadata: dict = {"job_id": job.job_id}
        if _obs_trace.TRACER is not None:
            # Full identity only when a tracer will read it: the span
            # must name its vp / stream / kernel / job, but the disabled
            # path should not pay for packing the extra keys.
            metadata.update(
                vp=job.vp,
                seq=job.seq,
                kind=job.kind.name,
                role=engine_role(job).partition("@")[0],
                device=job.device,
                stream=f"{job.vp}/stream0",
            )
            if job.kernel is not None:
                metadata["kernel"] = job.kernel.name
            if job.is_copy:
                metadata["nbytes"] = job.nbytes
            if job.members:
                metadata["members"] = len(job.members)
                metadata["member_vps"] = ",".join(
                    sorted({m.vp for m in job.members})
                )
        op = engine.submit(
            label=f"{job.kind.name}:{job.vp}#{job.seq}",
            duration_ms=duration_ms,
            on_complete=apply,
            **metadata,
        )
        return op.done

    def _complete(self, job: Job) -> None:
        job.completed_at_ms = self.env.now
        self.stats.completed += 1
        self.completed_log.append(job)
        registry = _obs_metrics.REGISTRY
        if registry is not None:
            # Live counters the time-series sampler can watch mid-run;
            # the authoritative per-VP breakdown is derived from the
            # completed log by ``repro.obs.account`` at collection time.
            registry.counter("account.completed").inc()
            if job.members:
                registry.counter(
                    "account.coalesced_members"
                ).inc(len(job.members))
        for member in job.members:
            # Recursive: members may themselves be merged jobs.
            self._complete(member)
        job.completion.succeed(job)

    # -- functional effects -----------------------------------------------------------

    def _effective_members(self, job: Job) -> List[Job]:
        return job.members if job.members else [job]

    def _apply_h2d(self, job: Job):
        def apply() -> None:
            for member in self._effective_members(job):
                if member.host_data is not None and member.handle is not None:
                    buffer = self.handles.buffer(member.handle)
                    # Zero-copy backends hand back a read-only view
                    # instead of a defensive copy: apps never mutate a
                    # submitted array in place (kernels rebind payloads,
                    # they do not write through), and the cleared
                    # writeable flag turns any future violation into a
                    # loud ValueError instead of a silent wrong result.
                    buffer.payload = self.backend.h2d(member.host_data)

        return apply

    def _apply_d2h(self, job: Job):
        def apply() -> None:
            for member in self._effective_members(job):
                if member.sink is not None and member.handle is not None:
                    member.sink(
                        self.backend.d2h(self.handles.buffer(member.handle).payload)
                    )

        return apply

    def _apply_kernel(self, job: Job):
        def apply() -> None:
            members = self._effective_members(job)
            if len(members) > 1 and self._apply_batched(members):
                return
            if len(members) > 1 and any(
                m.kernel is not None and self.registry.get(m.kernel.signature)
                for m in members
            ):
                self.stats.fallback_launches += 1
                registry = _obs_metrics.REGISTRY
                if registry is not None:
                    registry.counter("exec.fallback_launches").inc()
            for member in members:
                if member.kernel is None or member.out_handle is None:
                    continue
                inputs = [
                    self.handles.buffer(h).payload for h in member.arg_handles
                ]
                result = self.backend.launch(
                    member.kernel.signature, inputs, member.params
                )
                if result is None:
                    continue
                self.handles.buffer(member.out_handle).payload = result

        return apply

    def _apply_batched(self, members: List[Job]) -> bool:
        """Run a merged job's functional effect as ONE stacked backend op.

        All members of a coalesced launch share a signature by
        construction; the batch additionally requires a backend with the
        ``supports_batched`` capability, a batch-flagged implementation,
        leaf members with uniform parameters, and (inside
        ``launch_batched``) uniform shapes/dtypes.  Returns ``False`` on
        any precondition failure — the caller then takes the per-VP
        fallback, which is always correct.
        """
        if not batching_enabled():
            return False
        if not self.backend.supports_batched:
            return False
        first = members[0]
        if first.kernel is None or first.out_handle is None:
            return False
        signature = first.kernel.signature
        params = first.params
        for member in members:
            if member.members:  # nested merge: keep the recursive path
                return False
            if member.kernel is None or member.out_handle is None:
                return False
            if member.kernel.signature != signature or member.params != params:
                return False
        inputs_list = [
            tuple(self.handles.buffer(h).payload for h in member.arg_handles)
            for member in members
        ]
        rows = self.backend.launch_batched(signature, inputs_list, params)
        if rows is None:
            return False
        for member, row in zip(members, rows):
            self.handles.buffer(member.out_handle).payload = row
        self.stats.batched_launches += 1
        self.stats.batched_members += len(members)
        registry = _obs_metrics.REGISTRY
        if registry is not None:
            registry.counter("exec.batched_launches").inc()
            registry.counter("exec.batched_members").inc(len(members))
        return True
