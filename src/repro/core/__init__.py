"""SigmaVP core: the paper's contribution (Fig. 2's host-side modules)."""

from .coalescing import CoalesceStats, KernelCoalescer, Triple
from .dispatcher import DispatchStats, JobDispatcher, ServiceMode
from .estimation import ExecutionAnalyzer, PowerEstimate, TimingEstimate
from .framework import SigmaVP, VPSession
from .handles import HandleTable
from .interleaving import (
    balanced_speedup,
    expected_speedup,
    interleaved_total_time,
    serial_total_time,
)
from .ipc import IPCManager, IPCTransport, SHARED_MEMORY, SOCKET, VPControl
from .jobs import Job, JobKind, JobQueue
from .profiler import ProfileRecord, Profiler
from .rescheduler import (
    EngineBacklog,
    FIFOPolicy,
    InterleavingPolicy,
    SchedulingPolicy,
    make_policy,
)
from .scenarios import (
    ScenarioResult,
    run_c_program,
    run_emulation,
    run_native_gpu,
    run_sigma_vp,
)

__all__ = [
    "CoalesceStats",
    "DispatchStats",
    "EngineBacklog",
    "ExecutionAnalyzer",
    "FIFOPolicy",
    "HandleTable",
    "IPCManager",
    "IPCTransport",
    "InterleavingPolicy",
    "Job",
    "JobDispatcher",
    "JobKind",
    "JobQueue",
    "KernelCoalescer",
    "PowerEstimate",
    "ProfileRecord",
    "Profiler",
    "ScenarioResult",
    "SchedulingPolicy",
    "ServiceMode",
    "SHARED_MEMORY",
    "SOCKET",
    "SigmaVP",
    "TimingEstimate",
    "Triple",
    "VPControl",
    "VPSession",
    "balanced_speedup",
    "expected_speedup",
    "interleaved_total_time",
    "make_policy",
    "run_c_program",
    "run_emulation",
    "run_native_gpu",
    "run_sigma_vp",
    "serial_total_time",
]
