"""Profile-based execution analysis: time and power estimation.

Implements the paper's Section 4.  The kernel is compiled for both the
host and the target architecture; executing it on the *host* GPU yields a
profile (instruction counts, elapsed cycles, stall breakdown), from which
three increasingly-refined estimates of the target's clock cycles are
derived:

* **C** (Eq. 2)  — scale the target's expected instruction count
  sigma{K,T} by the peak-IPC ratio between target and host.  Ignores
  per-instruction-type latencies and every stall.
* **C'** (Eq. 4) — add per-type instruction latencies: ideal target
  cycles (Eq. 3) plus the host's *measured* stall cycles carried over
  verbatim.
* **C''** (Eq. 5) — replace the host's measured data-dependency stalls
  Upsilon[data]{K,H} with a prediction of the target's
  Upsilon[data]{K,T} from the probabilistic cache model.

Power (Eq. 6) combines the static dissipation with per-instruction-type
runtime energy at the estimated execution rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..gpu import cache as cache_model
from ..gpu import vectimes as _vectimes
from ..gpu.arch import GPUArchitecture
from ..gpu.timing import ExecutionProfile, KernelTimingModel
from ..kernels.compiler import KernelCompiler
from ..kernels.ir import ALL_TYPES, InstructionType, MEMORY_TYPES
from ..kernels.launch import LaunchConfig
from ..kernels.ir import KernelIR
from ..obs import metrics as _obs_metrics


@dataclass(frozen=True)
class TimingEstimate:
    """The three cycle estimates for one kernel on one target."""

    kernel_name: str
    host_name: str
    target_name: str
    sigma_target: Dict[InstructionType, float]
    c_cycles: float
    c_prime_cycles: float
    c_double_prime_cycles: float
    host_elapsed_cycles: float

    def cycles(self, model: str) -> float:
        """Select an estimate by name: 'C', \"C'\", or \"C''\"."""
        try:
            return {
                "C": self.c_cycles,
                "C'": self.c_prime_cycles,
                "C''": self.c_double_prime_cycles,
            }[model]
        except KeyError:
            raise ValueError(f"unknown estimate {model!r}; use C, C', or C''") from None


@dataclass(frozen=True)
class PowerEstimate:
    """Estimated power dissipation for one kernel on the target."""

    kernel_name: str
    target_name: str
    static_w: float
    dynamic_w: float
    execution_time_ms: float

    @property
    def total_w(self) -> float:
        return self.static_w + self.dynamic_w

    @property
    def energy_mj(self) -> float:
        """Energy for the launch in millijoules."""
        return self.total_w * self.execution_time_ms / 1e3


class ExecutionAnalyzer:
    """Derives target time/power from host profiles (paper Fig. 7)."""

    def __init__(
        self,
        host: GPUArchitecture,
        target: GPUArchitecture,
        compiler: Optional[KernelCompiler] = None,
    ):
        self.host = host
        self.target = target
        self.compiler = compiler or KernelCompiler()

    def __repr__(self) -> str:
        return f"ExecutionAnalyzer(host={self.host.name!r}, target={self.target.name!r})"

    # -- Eq. (1): expected dynamic instruction count ----------------------

    def sigma(
        self, kernel: KernelIR, launch: LaunchConfig, arch: GPUArchitecture
    ) -> Dict[InstructionType, float]:
        """sigma{K_i, A}: expected executed instructions per type."""
        compiled = self.compiler.compile(kernel, arch)
        return compiled.sigma(launch)

    # -- Eq. (3): ideal (stall-free) cycles -------------------------------

    def ideal_cycles(
        self, kernel: KernelIR, launch: LaunchConfig, arch: GPUArchitecture
    ) -> float:
        """C^P{K,A} = sum_i sigma{K_i,A} * tau{i,A} (device-level tau)."""
        sigma = self.sigma(kernel, launch, arch)
        return sum(
            sigma[itype] * arch.device_issue_cycles(itype) for itype in ALL_TYPES
        )

    # -- Eq. (2): the peak-IPC estimate ------------------------------------

    def estimate_c(self, kernel: KernelIR, launch: LaunchConfig) -> float:
        """C{K,T} = sigma{K,T} / (IPC_H * IPC_{H->T})."""
        sigma_total = sum(self.sigma(kernel, launch, self.target).values())
        ipc_host = self.host.ipc_peak
        ipc_host_to_target = self.target.ipc_peak / self.host.ipc_peak
        return sigma_total / (ipc_host * ipc_host_to_target)

    # -- Eq. (4): latency-aware estimate ------------------------------------

    def estimate_c_prime(
        self, kernel: KernelIR, launch: LaunchConfig, host_profile: ExecutionProfile
    ) -> float:
        """C'{K,T} = C^P{K,T} + C{K,H} - C^P{K,H}.

        The host's measured extra cycles (everything above ideal — all
        stalls) are carried over to the target unchanged.
        """
        cp_target = self.ideal_cycles(kernel, launch, self.target)
        cp_host = self.ideal_cycles(kernel, launch, self.host)
        return cp_target + host_profile.elapsed_cycles - cp_host

    # -- Eq. (5): cache-corrected estimate -------------------------------------

    def predicted_data_stalls(
        self, kernel: KernelIR, launch: LaunchConfig, arch: GPUArchitecture
    ) -> float:
        """Upsilon[data]{K,A} from the probabilistic cache model.

        Uses the ideal (Eq. 3) cycles as the issue stream that hides
        bandwidth time — the estimator's static stand-in for the real
        issue profile.
        """
        sigma = self.sigma(kernel, launch, arch)
        accesses = sum(sigma[t] for t in MEMORY_TYPES)
        return cache_model.data_stall_cycles(
            arch,
            kernel.footprint,
            accesses,
            launch.block_size,
            launch.grid_size,
            self.ideal_cycles(kernel, launch, arch),
        )

    def estimate_c_double_prime(
        self, kernel: KernelIR, launch: LaunchConfig, host_profile: ExecutionProfile
    ) -> float:
        """C''{K,T} = C'{K,T} - Upsilon[data]{K,H} + Upsilon[data]{K,T}."""
        c_prime = self.estimate_c_prime(kernel, launch, host_profile)
        upsilon_host = host_profile.data_stall_cycles
        upsilon_target = self.predicted_data_stalls(kernel, launch, self.target)
        return c_prime - upsilon_host + upsilon_target

    # -- the full estimate bundle -------------------------------------------------

    def analyze(
        self, kernel: KernelIR, launch: LaunchConfig,
        host_profile: Optional[ExecutionProfile] = None,
    ) -> TimingEstimate:
        """Run the whole Fig. 7 flow for one kernel launch.

        If no measured host profile is supplied, the kernel is executed
        on the host GPU model to obtain one (profiling run).  With
        vectorized timing enabled the estimate is produced by the batch
        engine (bit-identical to the scalar reference below, which the
        conformance suite proves); the scalar per-equation methods remain
        the reference implementation.
        """
        if host_profile is None:
            host_profile = self.profile_on_host(kernel, launch)
        if _vectimes.vectimes_enabled():
            return self.analyze_batch(kernel, [launch], [host_profile])[0]
        return TimingEstimate(
            kernel_name=kernel.name,
            host_name=self.host.name,
            target_name=self.target.name,
            sigma_target=self.sigma(kernel, launch, self.target),
            c_cycles=self.estimate_c(kernel, launch),
            c_prime_cycles=self.estimate_c_prime(kernel, launch, host_profile),
            c_double_prime_cycles=self.estimate_c_double_prime(
                kernel, launch, host_profile
            ),
            host_elapsed_cycles=host_profile.elapsed_cycles,
        )

    def analyze_batch(
        self,
        kernel: KernelIR,
        launches: Sequence[LaunchConfig],
        host_profiles: Optional[Sequence[ExecutionProfile]] = None,
    ) -> List[TimingEstimate]:
        """Eq. (1)-(5) estimates for N launches of one kernel in one pass.

        The sweep twin of :meth:`analyze`: instruction mixes fold into an
        (N, 7) sigma matrix per architecture and every estimator runs as
        one array program, instead of re-deriving sigma and the ideal
        cycles once per equation per launch.  With vectorized timing
        disabled this is an :meth:`analyze` loop (the scalar reference).
        """
        launches = list(launches)
        if host_profiles is None:
            resolved = self.profile_on_host_batch(kernel, launches)
        else:
            resolved = list(host_profiles)
            if len(resolved) != len(launches):
                raise ValueError(
                    f"{len(launches)} launches but {len(resolved)} host profiles"
                )
        if not _vectimes.vectimes_enabled():
            return [
                self.analyze(kernel, launch, profile)
                for launch, profile in zip(launches, resolved)
            ]
        n = len(launches)
        if n == 0:
            return []
        compiled_target = self.compiler.compile(kernel, self.target)
        compiled_host = self.compiler.compile(kernel, self.host)
        sigma_t = _vectimes.sigma_matrix(compiled_target, launches)
        sigma_h = _vectimes.sigma_matrix(compiled_host, launches)
        grid = np.fromiter(
            (launch.grid_size for launch in launches), dtype=np.int64, count=n
        )
        block = np.fromiter(
            (launch.block_size for launch in launches), dtype=np.int64, count=n
        )
        # Eq. (2): sigma total over the peak-IPC product (a Python-float
        # scalar, evaluated exactly as the scalar method writes it).
        ipc_host = self.host.ipc_peak
        ipc_host_to_target = self.target.ipc_peak / self.host.ipc_peak
        c = _vectimes.column_sum(sigma_t) / (ipc_host * ipc_host_to_target)
        # Eq. (4): ideal target cycles plus the host's measured stalls.
        ideal_t = _vectimes.ideal_cycles_array(self.target, sigma_t)
        ideal_h = _vectimes.ideal_cycles_array(self.host, sigma_h)
        elapsed_h = np.fromiter(
            (profile.elapsed_cycles for profile in resolved),
            dtype=np.float64,
            count=n,
        )
        c_prime = ideal_t + elapsed_h - ideal_h
        # Eq. (5): swap measured host data stalls for predicted target ones.
        upsilon_h = np.fromiter(
            (profile.data_stall_cycles for profile in resolved),
            dtype=np.float64,
            count=n,
        )
        upsilon_t = _vectimes.predicted_data_stalls_array(
            self.target, kernel.footprint, sigma_t, block, grid, ideal_t
        )
        c_double_prime = c_prime - upsilon_h + upsilon_t
        registry = _obs_metrics.REGISTRY
        if registry is not None:
            registry.counter("exec.vectimes_estimates").inc(n)
        estimates: List[TimingEstimate] = []
        for i in range(n):
            sigma_target: Dict[InstructionType, float] = {
                t: float(sigma_t[i, j]) for j, t in enumerate(ALL_TYPES)
            }
            estimates.append(
                TimingEstimate(
                    kernel_name=kernel.name,
                    host_name=self.host.name,
                    target_name=self.target.name,
                    sigma_target=sigma_target,
                    c_cycles=float(c[i]),
                    c_prime_cycles=float(c_prime[i]),
                    c_double_prime_cycles=float(c_double_prime[i]),
                    host_elapsed_cycles=resolved[i].elapsed_cycles,
                )
            )
        return estimates

    def profile_on_host(self, kernel: KernelIR, launch: LaunchConfig) -> ExecutionProfile:
        """Execute the kernel on the host GPU model (Fig. 7 step 2)."""
        model = KernelTimingModel(self.host)
        compiled = self.compiler.compile(kernel, self.host)
        return model.execute(compiled, launch)

    def profile_on_host_batch(
        self, kernel: KernelIR, launches: Sequence[LaunchConfig]
    ) -> List[ExecutionProfile]:
        """Host profiles for N launches through one timing model.

        One compile and one :meth:`~repro.gpu.timing.KernelTimingModel.
        execute_batch` pass, instead of a fresh model per launch; the
        profile is a pure function of (kernel, arch, launch), so sharing
        the model changes nothing but the work done.
        """
        model = KernelTimingModel(self.host)
        compiled = self.compiler.compile(kernel, self.host)
        return model.execute_batch([(compiled, launch) for launch in launches])

    def observe_on_target(self, kernel: KernelIR, launch: LaunchConfig) -> ExecutionProfile:
        """Ground truth: run the reference model at target parameters.

        This plays the role of the paper's measurement on the actual
        Tegra K1 board.
        """
        model = KernelTimingModel(self.target)
        compiled = self.compiler.compile(kernel, self.target)
        return model.execute(compiled, launch)

    # -- time and power ----------------------------------------------------------

    def estimated_time_ms(self, cycles: float) -> float:
        """ET{K,T}: estimated cycles through the target clock."""
        if cycles < 0:
            raise ValueError(f"negative cycle count {cycles}")
        return self.target.cycles_to_ms(cycles)

    def estimate_power(
        self,
        kernel: KernelIR,
        launch: LaunchConfig,
        cycles: Optional[float] = None,
        host_profile: Optional[ExecutionProfile] = None,
    ) -> PowerEstimate:
        """Eq. (6): P{K,T} = P_static + sum_i sigma_i/ET * RP_i.

        Uses C'' for the cycle count unless ``cycles`` is given, as the
        paper does ("We use C'' as the clock cycles for calculating the
        estimated power consumption").
        """
        if _vectimes.vectimes_enabled():
            return self.estimate_power_batch(
                kernel,
                [launch],
                cycles=None if cycles is None else [cycles],
                host_profiles=None if host_profile is None else [host_profile],
            )[0]
        if cycles is None:
            cycles = self.estimate_c_double_prime(
                kernel, launch,
                host_profile or self.profile_on_host(kernel, launch),
            )
        et_ms = self.estimated_time_ms(cycles)
        if et_ms <= 0:
            raise ValueError("estimated execution time must be positive")
        et_seconds = et_ms / 1e3
        sigma = self.sigma(kernel, launch, self.target)
        dynamic_w = sum(
            (sigma[itype] / et_seconds)
            * self.target.instruction_energy_nj[itype] * 1e-9
            for itype in ALL_TYPES
        )
        return PowerEstimate(
            kernel_name=kernel.name,
            target_name=self.target.name,
            static_w=self.target.static_power_w,
            dynamic_w=dynamic_w,
            execution_time_ms=et_ms,
        )

    def estimate_power_batch(
        self,
        kernel: KernelIR,
        launches: Sequence[LaunchConfig],
        cycles: Optional[Sequence[float]] = None,
        host_profiles: Optional[Sequence[ExecutionProfile]] = None,
    ) -> List[PowerEstimate]:
        """Eq. (6) power for N launches of one kernel in one array pass.

        With vectorized timing disabled this loops the scalar
        :meth:`estimate_power` (the reference path).
        """
        launches = list(launches)
        if not _vectimes.vectimes_enabled():
            cycles_list: List[Optional[float]] = (
                [None] * len(launches) if cycles is None else [float(c) for c in cycles]
            )
            profiles_list: List[Optional[ExecutionProfile]] = (
                [None] * len(launches) if host_profiles is None else list(host_profiles)
            )
            return [
                self.estimate_power(kernel, launch, cycles=cyc, host_profile=prof)
                for launch, cyc, prof in zip(launches, cycles_list, profiles_list)
            ]
        n = len(launches)
        if n == 0:
            return []
        if cycles is None:
            estimates = self.analyze_batch(
                kernel, launches, host_profiles=host_profiles
            )
            cycles_arr = np.fromiter(
                (est.c_double_prime_cycles for est in estimates),
                dtype=np.float64,
                count=n,
            )
        else:
            if len(cycles) != n:
                raise ValueError(
                    f"{n} launches but {len(cycles)} cycle counts"
                )
            cycles_arr = np.fromiter(
                (float(c) for c in cycles), dtype=np.float64, count=n
            )
        for value in cycles_arr:
            if value < 0:
                raise ValueError(f"negative cycle count {float(value)}")
        et_ms = cycles_arr / self.target.clock_khz
        if np.any(et_ms <= 0):
            raise ValueError("estimated execution time must be positive")
        et_seconds = et_ms / 1e3
        compiled_target = self.compiler.compile(kernel, self.target)
        sigma_t = _vectimes.sigma_matrix(compiled_target, launches)
        energy = [self.target.instruction_energy_nj[t] for t in ALL_TYPES]
        dynamic = np.zeros(n, dtype=np.float64)
        for j in range(len(ALL_TYPES)):
            dynamic = dynamic + (sigma_t[:, j] / et_seconds) * energy[j] * 1e-9
        return [
            PowerEstimate(
                kernel_name=kernel.name,
                target_name=self.target.name,
                static_w=self.target.static_power_w,
                dynamic_w=float(dynamic[i]),
                execution_time_ms=float(et_ms[i]),
            )
            for i in range(n)
        ]

    def observed_power(self, kernel: KernelIR, launch: LaunchConfig) -> PowerEstimate:
        """Ground-truth power: what a meter on the target board reads.

        Unlike the Eq. (6) estimate, the measurement reflects the actual
        elapsed cycles *and* the DRAM interface energy of every line
        fill — activity the per-instruction power model does not cover,
        which is what keeps Fig. 13's estimates within (rather than at)
        ~10% of the measured values.
        """
        profile = self.observe_on_target(kernel, launch)
        et_ms = self.estimated_time_ms(profile.elapsed_cycles)
        et_seconds = et_ms / 1e3
        sigma = profile.sigma
        dynamic_w = sum(
            (sigma[itype] / et_seconds)
            * self.target.instruction_energy_nj[itype] * 1e-9
            for itype in ALL_TYPES
        )
        dram_w = (
            profile.cache_misses / et_seconds
        ) * self.target.dram_access_energy_nj * 1e-9
        return PowerEstimate(
            kernel_name=kernel.name,
            target_name=self.target.name,
            static_w=self.target.static_power_w,
            dynamic_w=dynamic_w + dram_w,
            execution_time_ms=et_ms,
        )
