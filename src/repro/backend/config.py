"""Backend selection as configuration.

:class:`BackendConfig` is the JSON-able record that rides on
``SchedulerConfig`` — the scheduling layer already threads frozen config
dataclasses end-to-end (policy, placement, cost knobs), and backend
selection follows the same groove: a registry *name* plus constructor
options, resolved to a live :class:`~repro.backend.api.ExecutionBackend`
exactly once, when the framework is built.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass(frozen=True)
class BackendConfig:
    """Which execution backend to build, and with what options.

    ``name`` is a key in the backend registry (``repro backends`` lists
    them); ``options`` are forwarded to the backend factory verbatim.
    """

    name: str
    options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("backend name must be non-empty")

    def describe(self) -> Dict[str, Any]:
        """JSON-able summary for reports and logs."""
        return {"name": self.name, "options": dict(self.options)}
