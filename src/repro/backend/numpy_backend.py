"""Reference numpy execution backends.

``NumpyBackend`` is the original per-launch path: zero-copy read-only
views for H2D, a direct ``fn(*inputs, **params)`` per launch, no batch
capability (so the dispatcher always takes the per-VP fallback — the
path PR 3 proved digest-identical to batching).  ``NumpyBatchedBackend``
layers the PR-3 stacked ``(N, ...)`` replication batching on top and is
the process default.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..kernels.functional import KernelFunction
from .api import ExecutionBackend
from .registry import register_backend


def stacked_rows(
    fn: KernelFunction,
    inputs_list: List[Tuple[Any, ...]],
    params: Dict[str, Any],
    xp: Any = np,
    array_type: Any = np.ndarray,
) -> Optional[List[Any]]:
    """Execute N member calls as ONE call over ``(N, ...)`` stacked inputs.

    Returns the per-member output rows (views into the one stacked
    result), or ``None`` when the preconditions for a well-defined batch
    do not hold — mismatched argument counts, non-uniform shapes or
    dtypes across members, or an implementation that does not preserve
    the leading axis.  Callers treat ``None`` as "fall back to per-VP
    execution", so this helper never guesses.

    ``xp``/``array_type`` parametrize the array module (numpy by
    default) so device backends with a numpy-compatible namespace (cupy)
    reuse the identical precondition logic.
    """
    n_members = len(inputs_list)
    if n_members == 0:
        return None
    first = inputs_list[0]
    n_args = len(first)
    if any(len(inputs) != n_args for inputs in inputs_list):
        return None
    if n_args == 0:
        return None
    for position in range(n_args):
        arrays = [inputs[position] for inputs in inputs_list]
        head = arrays[0]
        if not all(isinstance(a, array_type) for a in arrays):
            return None
        if any(a.shape != head.shape or a.dtype != head.dtype for a in arrays):
            return None
    stacked = [
        xp.stack([inputs[position] for inputs in inputs_list])
        for position in range(n_args)
    ]
    out = fn(*stacked, **params)
    if not isinstance(out, array_type) or out.ndim < 1 or out.shape[0] != n_members:
        return None
    return [out[i] for i in range(n_members)]


@register_backend
class NumpyBackend(ExecutionBackend):
    """Per-launch numpy execution with zero-copy read-only H2D views."""

    name = "numpy"
    description = "reference per-launch numpy execution (zero-copy views)"
    supports_batched = False
    zero_copy = True

    def asarray(self, host: Any) -> np.ndarray:
        return np.asarray(host)

    def _h2d(self, host: Any) -> np.ndarray:
        # Zero-copy: the "device" array IS the host array.  The
        # read-only view makes a mutating functional kernel fail loudly
        # instead of silently corrupting data the guest still owns.
        view = np.asarray(host).view()
        view.flags.writeable = False
        return view

    def _d2h(self, device: Any) -> Any:
        return device

    def _launch(
        self, fn: KernelFunction, inputs: List[Any], params: Dict[str, Any]
    ) -> Any:
        return fn(*inputs, **params)


@register_backend
class NumpyBatchedBackend(NumpyBackend):
    """Numpy with stacked ``(N, ...)`` replication batching (PR-3 path)."""

    name = "numpy-batched"
    description = "numpy with stacked (N, ...) replication batching"
    supports_batched = True

    def _launch_batched(
        self,
        fn: KernelFunction,
        inputs_list: List[Tuple[Any, ...]],
        params: Dict[str, Any],
    ) -> Optional[List[Any]]:
        return stacked_rows(fn, inputs_list, params)
