"""The CLUDA-style execution-backend interface.

SigmaVP's whole point is multiplexing simulated GPU work onto a *host*
execution resource, yet functional execution used to be hard-wired to
numpy calls scattered across the kernels, device, dispatcher, and
VP-runtime layers.  :class:`ExecutionBackend` is the one seam they all
route through now — the same shape CLUDA gives reikna (one API over
CUDA and OpenCL) and the shape a physical-device bridge needs (arXiv
2505.15590): a small, capability-flagged contract a host execution
resource plugs in behind.

The contract
------------
* ``allocate`` / ``free`` — device-allocation accounting (tokens);
* ``h2d`` / ``d2h`` — host-to-device and device-to-host transfers;
* ``launch(signature, inputs, params)`` — run the functional kernel
  registered under ``signature`` once;
* ``launch_batched(signature, inputs_list, params)`` — run N member
  calls as ONE stacked ``(N, ...)`` operation (warp-level-parallelism
  style replication batching, arXiv 1501.01405), or return ``None`` to
  ask the caller for the per-VP fallback;
* ``synchronize`` — drain asynchronous device work (no-op for host
  backends);
* capability flags — ``supports_batched`` (may serve
  ``launch_batched``) and ``zero_copy`` (``h2d`` returns a view of the
  host array rather than a private copy).

Zero-copy safety: a zero-copy ``h2d`` MUST return a **read-only** view
(``view.flags.writeable = False``) so a functional kernel that mutates
its input fails loudly instead of silently corrupting shared host data.

Every public operation counts into the ``exec.backend_*`` observability
counters (None-guarded, so the disabled path costs one attribute read).
Backends may be registered-but-unavailable (see :class:`CupyBackend`):
``available()`` probes, ``require_available()`` raises
:class:`BackendUnavailableError` with the reason.
"""

from __future__ import annotations

import abc
from typing import Any, ClassVar, Dict, List, Optional, Sequence, Tuple

from ..kernels.functional import REGISTRY, FunctionalRegistry, KernelFunction
from ..obs import metrics as _obs_metrics


class BackendUnavailableError(RuntimeError):
    """A registered backend cannot run in this environment."""


class ExecutionBackend(abc.ABC):
    """One host execution resource behind the CLUDA-style seam.

    Subclasses implement the private ``_h2d``/``_d2h``/``_launch``
    hooks (and optionally ``_launch_batched``/``_allocate``/``_free``);
    the public methods are template wrappers that enforce availability,
    keep the allocation ledger, and maintain the ``exec.backend_*``
    counters uniformly across every backend.
    """

    #: Registry key; subclasses must override with a concrete name.
    name: ClassVar[str] = "abstract"
    #: One-line description for ``repro backends``.
    description: ClassVar[str] = ""
    #: Whether ``launch_batched`` may serve stacked replication batches.
    supports_batched: ClassVar[bool] = False
    #: Whether ``h2d`` returns a (read-only) view of the host array.
    zero_copy: ClassVar[bool] = False

    def __init__(self, registry: Optional[FunctionalRegistry] = None) -> None:
        self.registry = REGISTRY if registry is None else registry
        #: Live allocation ledger: token -> nbytes.
        self._live: Dict[int, int] = {}
        self._next_token = 0

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"

    # -- availability -----------------------------------------------------

    def available(self) -> bool:
        """Whether this backend can execute in the current environment."""
        return True

    def unavailable_reason(self) -> Optional[str]:
        """Why :meth:`available` is ``False`` (``None`` when available)."""
        return None

    def require_available(self) -> "ExecutionBackend":
        """Return ``self`` or raise :class:`BackendUnavailableError`."""
        if not self.available():
            reason = self.unavailable_reason() or "unavailable"
            raise BackendUnavailableError(
                f"execution backend {self.name!r} is unavailable: {reason}"
            )
        return self

    def capabilities(self) -> Dict[str, bool]:
        """The capability flags, JSON-ably."""
        return {
            "supports_batched": self.supports_batched,
            "zero_copy": self.zero_copy,
            "available": self.available(),
        }

    # -- memory -----------------------------------------------------------

    def allocate(self, nbytes: int, owner: str = "") -> int:
        """Account one device allocation; returns an opaque token."""
        if nbytes <= 0:
            raise ValueError(f"allocation size must be positive, got {nbytes}")
        self.require_available()
        token = self._next_token
        self._next_token += 1
        self._allocate(token, int(nbytes), owner)
        self._live[token] = int(nbytes)
        self._count("allocs")
        return token

    def free(self, token: int) -> None:
        """Release a token from :meth:`allocate`."""
        try:
            nbytes = self._live.pop(token)
        except KeyError:
            raise RuntimeError(
                f"backend {self.name!r}: unknown or double-freed "
                f"allocation token {token!r}"
            ) from None
        self._free(token, nbytes)
        self._count("frees")

    @property
    def live_bytes(self) -> int:
        """Bytes currently accounted as allocated on this backend."""
        return sum(self._live.values())

    # -- data movement ----------------------------------------------------

    def asarray(self, host: Any) -> Any:
        """Canonicalize host-side data (the ``np.asarray`` of this seam).

        Stays a *host* array: runtimes use it to size transfers before
        the device copy happens.
        """
        raise NotImplementedError

    def h2d(self, host: Any) -> Any:
        """Transfer host data to the device; returns the device array.

        Zero-copy backends return a read-only view of the host array —
        the cleared writeable flag turns any in-place mutation by a
        functional kernel into a loud ``ValueError``.
        """
        self.require_available()
        device = self._h2d(host)
        self._count("h2d")
        return device

    def d2h(self, device: Any) -> Any:
        """Transfer a device array back to the host (``None`` passes)."""
        if device is None:
            return None
        self.require_available()
        host = self._d2h(device)
        self._count("d2h")
        return host

    # -- execution --------------------------------------------------------

    def launch(
        self,
        signature: str,
        inputs: Sequence[Any],
        params: Optional[Dict[str, Any]] = None,
    ) -> Optional[Any]:
        """Run the functional kernel registered under ``signature``.

        Returns the output device array, or ``None`` when no functional
        implementation is registered (timing-only runs) — the callers'
        long-standing skip semantics.
        """
        fn = self.registry.get(signature)
        if fn is None:
            return None
        self.require_available()
        out = self._launch(fn, list(inputs), dict(params or {}))
        self._count("launches")
        return out

    def launch_batched(
        self,
        signature: str,
        inputs_list: Sequence[Tuple[Any, ...]],
        params: Optional[Dict[str, Any]] = None,
    ) -> Optional[List[Any]]:
        """Run N member calls as ONE stacked ``(N, ...)`` operation.

        Returns per-member output rows, or ``None`` when this backend
        cannot serve the batch — no capability, a non-batch-flagged
        signature, no registered implementation, or failed stacking
        preconditions.  ``None`` always means "take the per-VP
        fallback", never an error.
        """
        if not self.supports_batched:
            return None
        if not self.registry.is_batched(signature):
            return None
        fn = self.registry.get(signature)
        if fn is None:
            return None
        self.require_available()
        rows = self._launch_batched(
            fn, [tuple(inputs) for inputs in inputs_list], dict(params or {})
        )
        if rows is not None:
            self._count("batched_launches")
            self._count("batched_members", len(rows))
        return rows

    def synchronize(self) -> None:
        """Drain outstanding device work (host backends: no-op)."""
        return None

    # -- subclass hooks ---------------------------------------------------

    def _allocate(self, token: int, nbytes: int, owner: str) -> None:
        """Backend-specific allocation effect (default: ledger only)."""

    def _free(self, token: int, nbytes: int) -> None:
        """Backend-specific release effect (default: ledger only)."""

    @abc.abstractmethod
    def _h2d(self, host: Any) -> Any:
        """Produce the device-side array for ``host``."""

    @abc.abstractmethod
    def _d2h(self, device: Any) -> Any:
        """Produce the host-side array for ``device``."""

    @abc.abstractmethod
    def _launch(
        self, fn: KernelFunction, inputs: List[Any], params: Dict[str, Any]
    ) -> Any:
        """Apply one registered kernel function to device inputs."""

    def _launch_batched(
        self,
        fn: KernelFunction,
        inputs_list: List[Tuple[Any, ...]],
        params: Dict[str, Any],
    ) -> Optional[List[Any]]:
        """Stacked batch execution hook (default: not supported)."""
        return None

    # -- observability ----------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        registry = _obs_metrics.REGISTRY
        if registry is not None:
            registry.counter(f"exec.backend_{name}").inc(amount)
