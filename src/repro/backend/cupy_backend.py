"""Host-GPU execution via cupy — registered even when cupy is absent.

This is the backend that reopens the paper's actual host-GPU
multiplexing path: functional kernels run on a real CUDA device through
cupy's numpy-compatible namespace.  cupy is an *optional* dependency, so
the import is deferred to first use; without it the backend stays
registered (``repro backends`` lists it) but reports
``available() == False`` and every operation raises
:class:`~repro.backend.api.BackendUnavailableError` with the reason.
"""

from __future__ import annotations

import importlib.util
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..kernels.functional import FunctionalRegistry, KernelFunction
from .api import ExecutionBackend
from .numpy_backend import stacked_rows
from .registry import register_backend


@register_backend
class CupyBackend(ExecutionBackend):
    """Execute functional kernels on the host GPU through cupy."""

    name = "cupy"
    description = "host-GPU execution via cupy (optional dependency)"
    supports_batched = True
    zero_copy = False

    def __init__(self, registry: Optional[FunctionalRegistry] = None) -> None:
        super().__init__(registry)
        self._cupy: Any = None

    def _module(self) -> Any:
        if self._cupy is None:
            self.require_available()
            import cupy  # deferred: optional dependency

            self._cupy = cupy
        return self._cupy

    def available(self) -> bool:
        if self._cupy is not None:
            return True
        return importlib.util.find_spec("cupy") is not None

    def unavailable_reason(self) -> Optional[str]:
        if self.available():
            return None
        return "the 'cupy' package is not installed"

    def asarray(self, host: Any) -> np.ndarray:
        # Host-side canonicalization stays numpy: runtimes size the
        # modelled transfer from it *before* the device copy happens.
        return np.asarray(host)

    def _to_device(self, value: Any) -> Any:
        cp = self._module()
        if isinstance(value, np.ndarray):
            return cp.asarray(value)
        return value

    def _h2d(self, host: Any) -> Any:
        return self._to_device(np.asarray(host))

    def _d2h(self, device: Any) -> Any:
        cp = self._module()
        if isinstance(device, cp.ndarray):
            return cp.asnumpy(device)
        return device

    def _launch(
        self, fn: KernelFunction, inputs: List[Any], params: Dict[str, Any]
    ) -> Any:
        moved = [self._to_device(value) for value in inputs]
        return fn(*moved, **params)

    def _launch_batched(
        self,
        fn: KernelFunction,
        inputs_list: List[Tuple[Any, ...]],
        params: Dict[str, Any],
    ) -> Optional[List[Any]]:
        cp = self._module()
        moved = [
            tuple(self._to_device(value) for value in inputs)
            for inputs in inputs_list
        ]
        return stacked_rows(fn, moved, params, xp=cp, array_type=cp.ndarray)

    def synchronize(self) -> None:
        if self._cupy is not None:
            self._cupy.cuda.Stream.null.synchronize()
