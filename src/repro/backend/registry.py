"""Name-keyed execution-backend registry and process-default selection.

Mirrors ``repro.sched.registry`` (register/make/available triple) and
the ``repro.gpu.vectimes`` process-toggle idiom (env var + module
default + scoped override), so backend selection composes with the
existing config surface:

* ``register_backend`` — class decorator; ``name``/``description`` come
  from class attributes, re-registration is last-wins (tests override).
* ``make_backend(name, **options)`` — factory; unknown names raise with
  the list of known backends.
* ``REPRO_BACKEND`` / ``set_default_backend`` / ``backend_scope`` —
  process-wide default used whenever a caller does not hand a backend
  down explicitly (standalone runtimes, farm workers, CLI).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Type,
    TypeVar,
)

if TYPE_CHECKING:
    from ..kernels.functional import FunctionalRegistry
    from .api import ExecutionBackend
    from .config import BackendConfig

#: Environment variable selecting the process-default backend.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Built-in default: the PR-3 stacked-replication path (current behavior).
DEFAULT_BACKEND_NAME = "numpy-batched"

_BACKENDS: Dict[str, Tuple[Callable[..., "ExecutionBackend"], str]] = {}

_B = TypeVar("_B", bound="Type[ExecutionBackend]")


def register_backend(cls: _B) -> _B:
    """Class decorator adding an ``ExecutionBackend`` to the registry.

    The registry key and listing text come from the class's ``name`` and
    ``description`` attributes.  Registering the same name again
    replaces the earlier entry (tests rely on this to inject doubles).
    """
    name = getattr(cls, "name", "abstract")
    if not name or name == "abstract":
        raise ValueError(
            f"backend class {cls.__name__} must define a concrete 'name'"
        )
    _BACKENDS[name] = (cls, getattr(cls, "description", ""))
    return cls


def make_backend(name: str, **options: Any) -> "ExecutionBackend":
    """Instantiate the backend registered under ``name``."""
    try:
        factory, _ = _BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS)) or "none registered"
        raise ValueError(
            f"unknown execution backend {name!r} (known: {known})"
        ) from None
    return factory(**options)


def available_backends() -> List[Tuple[str, str]]:
    """Sorted ``(name, description)`` pairs of registered backends."""
    return sorted((name, desc) for name, (_, desc) in _BACKENDS.items())


def backend_status() -> List[Dict[str, Any]]:
    """Probe every registered backend for the ``repro backends`` listing.

    Instantiates each backend (cheap: imports are deferred) to report
    availability and capability flags without requiring availability.
    """
    rows: List[Dict[str, Any]] = []
    for name, description in available_backends():
        backend = make_backend(name)
        rows.append(
            {
                "name": name,
                "description": description,
                "available": backend.available(),
                "reason": backend.unavailable_reason(),
                "supports_batched": backend.supports_batched,
                "zero_copy": backend.zero_copy,
            }
        )
    return rows


# -- process default ------------------------------------------------------

_DEFAULT: Optional[str] = None


def backend_from_env() -> str:
    """Backend name from ``REPRO_BACKEND`` (falling back to built-in)."""
    return os.environ.get(BACKEND_ENV_VAR, "") or DEFAULT_BACKEND_NAME


def default_backend_name() -> str:
    """The effective process-default backend name, validated."""
    name = _DEFAULT if _DEFAULT is not None else backend_from_env()
    if name not in _BACKENDS:
        known = ", ".join(sorted(_BACKENDS)) or "none registered"
        raise ValueError(
            f"unknown execution backend {name!r} selected via "
            f"{BACKEND_ENV_VAR} or set_default_backend (known: {known})"
        )
    return name


def set_default_backend(name: Optional[str]) -> Optional[str]:
    """Set the process-default backend name; returns the previous value.

    ``None`` reverts to the environment/built-in default.
    """
    global _DEFAULT
    if name is not None and name not in _BACKENDS:
        known = ", ".join(sorted(_BACKENDS)) or "none registered"
        raise ValueError(
            f"unknown execution backend {name!r} (known: {known})"
        )
    previous = _DEFAULT
    _DEFAULT = name
    return previous


@contextmanager
def backend_scope(name: Optional[str]) -> Iterator[None]:
    """Temporarily override the process-default backend.

    Used by bench comparison modes: scoping (rather than passing
    ``backend=`` into job kwargs) keeps job config-hash keys identical,
    so result digests stay directly comparable across backends.
    """
    previous = set_default_backend(name)
    try:
        yield
    finally:
        set_default_backend(previous)


# -- shared default instances ---------------------------------------------

_INSTANCE_CAP = 32
_INSTANCES: "OrderedDict[Tuple[str, int], Tuple[Any, ExecutionBackend]]"
_INSTANCES = OrderedDict()


def default_backend(
    registry: Optional["FunctionalRegistry"] = None,
) -> "ExecutionBackend":
    """A shared instance of the process-default backend.

    Callers that are not handed a backend explicitly (standalone VP
    runtimes, direct ``HostGPU`` construction) share one instance per
    ``(backend name, functional registry)`` pair, so allocation ledgers
    and counters aggregate sensibly within a process.
    """
    name = default_backend_name()
    key = (name, 0 if registry is None else id(registry))
    entry = _INSTANCES.get(key)
    # The id() key could alias a garbage-collected registry; the strong
    # reference stored alongside both prevents that and lets us verify.
    if entry is not None and (registry is None or entry[0] is registry):
        return entry[1]
    instance = (
        make_backend(name) if registry is None else make_backend(name, registry=registry)
    )
    _INSTANCES[key] = (registry, instance)
    while len(_INSTANCES) > _INSTANCE_CAP:
        _INSTANCES.popitem(last=False)
    return instance


def backend_from_config(
    config: Optional["BackendConfig"],
    registry: Optional["FunctionalRegistry"] = None,
) -> "ExecutionBackend":
    """Build the backend a :class:`BackendConfig` describes.

    ``None`` means "process default" — a fresh instance bound to
    ``registry`` so framework-owned backends do not share ledgers with
    ambient callers.
    """
    name = config.name if config is not None else default_backend_name()
    options: Dict[str, Any] = dict(config.options) if config is not None else {}
    if registry is not None:
        options.setdefault("registry", registry)
    return make_backend(name, **options)
