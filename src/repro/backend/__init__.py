"""Pluggable execution backends behind a CLUDA-style API.

Everything in SigmaVP that actually *executes* functional kernel work —
allocations, H2D/D2H copies, launches, batched launches — routes through
one :class:`ExecutionBackend` seam (the shape reikna's CLUDA gives CUDA
and OpenCL).  Backends are name-keyed plugins: ``numpy`` is the
reference per-launch path, ``numpy-batched`` (the default) adds stacked
replication batching, and ``cupy`` runs on a real host GPU when cupy is
installed.  Select with ``--backend`` / ``REPRO_BACKEND`` / ``backend=``
on the scenario entry points; list with ``repro backends``.
"""

from .api import BackendUnavailableError, ExecutionBackend
from .config import BackendConfig
from .registry import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND_NAME,
    available_backends,
    backend_from_config,
    backend_from_env,
    backend_scope,
    backend_status,
    default_backend,
    default_backend_name,
    make_backend,
    register_backend,
    set_default_backend,
)

# Importing the modules registers the built-in backends.
from .cupy_backend import CupyBackend
from .numpy_backend import NumpyBackend, NumpyBatchedBackend, stacked_rows

__all__ = [
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND_NAME",
    "BackendConfig",
    "BackendUnavailableError",
    "CupyBackend",
    "ExecutionBackend",
    "NumpyBackend",
    "NumpyBatchedBackend",
    "available_backends",
    "backend_from_config",
    "backend_from_env",
    "backend_scope",
    "backend_status",
    "default_backend",
    "default_backend_name",
    "make_backend",
    "register_backend",
    "set_default_backend",
    "stacked_rows",
]
