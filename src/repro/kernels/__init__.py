"""Kernel IR, per-architecture compilation, launch geometry, functional execution."""

from .compiler import (
    CompiledBlock,
    CompiledKernel,
    DEFAULT_COMPILER,
    KernelCompiler,
    compile_kernel,
)
from .functional import (
    REGISTRY,
    FunctionalRegistry,
    functional_kernel,
)
from .ir import (
    ALL_TYPES,
    InstructionMix,
    InstructionType,
    KernelIR,
    LaunchContext,
    MEMORY_TYPES,
    MemoryFootprint,
    ProgramBlock,
    align_up,
    ceil_div,
    uniform_kernel,
)
from .launch import LaunchConfig, launch_for_elements, natural_launch

__all__ = [
    "ALL_TYPES",
    "CompiledBlock",
    "CompiledKernel",
    "DEFAULT_COMPILER",
    "FunctionalRegistry",
    "InstructionMix",
    "InstructionType",
    "KernelCompiler",
    "KernelIR",
    "LaunchConfig",
    "LaunchContext",
    "MEMORY_TYPES",
    "MemoryFootprint",
    "ProgramBlock",
    "REGISTRY",
    "align_up",
    "ceil_div",
    "compile_kernel",
    "functional_kernel",
    "launch_for_elements",
    "natural_launch",
    "uniform_kernel",
]
