"""Per-architecture kernel lowering.

The paper's profile-based execution analysis compiles each kernel twice —
for the host GPU and for the target GPU (Fig. 7, step 1) — and uses the
resulting *static* per-block instruction counts mu{b,T} together with the
dynamic iteration counts lambda_b to derive the expected dynamic count
sigma{K,T} (Eq. 1, Fig. 8).  The "compiler" here applies each
architecture's per-type expansion factors to the abstract IR, which models
exactly the effect Fig. 8 illustrates: the same source block contains 32
instructions when compiled for the host and 43 for the target.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Tuple

from .. import cache as _disk_cache
from ..backend.registry import default_backend_name
from ..caching import caches_enabled, register_cache_clearer
from ..obs import metrics as _obs_metrics

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..gpu.arch import GPUArchitecture

from .ir import (
    ALL_TYPES,
    InstructionMix,
    InstructionType,
    KernelIR,
    LaunchContext,
    ProgramBlock,
)
from .launch import LaunchConfig


@dataclass(frozen=True)
class CompiledBlock:
    """A program block lowered for one architecture: mu{b,T} per type."""

    source: ProgramBlock
    mix: InstructionMix  # static per-execution counts after expansion

    @property
    def name(self) -> str:
        return self.source.name

    def static_count(self, itype: InstructionType) -> float:
        """mu{b_i, T}: static instructions of type ``i`` in this block."""
        return self.mix[itype]


@dataclass(frozen=True)
class CompiledKernel:
    """A kernel lowered for one architecture."""

    ir: KernelIR
    arch: GPUArchitecture
    blocks: Tuple[CompiledBlock, ...]

    @property
    def name(self) -> str:
        return self.ir.name

    def per_thread_mix(self, ctx: LaunchContext) -> InstructionMix:
        """Dynamic per-thread mix: sum_b lambda_b * mu{b,T}."""
        mix = InstructionMix()
        for block in self.blocks:
            trips = block.source.trip_count(ctx)
            mix = mix.combined(block.mix.scaled(trips))
        return mix

    def sigma(self, launch: LaunchConfig) -> Dict[InstructionType, float]:
        """Expected dynamic instruction counts sigma{K_i, T} (Eq. 1).

        lambda_b here is the *total* execution count of block b across all
        launched threads, so sigma is the total executed instructions —
        the quantity the profiler reports and Eqs. (2)-(6) consume.
        """
        ctx = launch.context()
        per_thread = self.per_thread_mix(ctx)
        threads = launch.threads
        return {t: per_thread[t] * threads for t in ALL_TYPES}

    def sigma_total(self, launch: LaunchConfig) -> float:
        return sum(self.sigma(launch).values())


#: Default bound on a compiler's memo; far above any real kernel count,
#: it only guards pathological churn (e.g. endless merged-kernel variants).
DEFAULT_COMPILE_CACHE_SIZE = 4096


class KernelCompiler:
    """Lowers :class:`KernelIR` to per-architecture static counts.

    Compilation results are memoized per **(kernel id, arch name,
    backend name)** with LRU eviction: SigmaVP compiles each distinct
    kernel object once per architecture and reuses the result across the
    many launches that the multiplexed VPs submit.  Keying on the object
    identity (the cache entry holds a strong reference, so the id cannot
    be recycled while the entry lives) means two same-signature kernels
    that differ in footprint or trip rules — e.g. the coalescer's merged
    variants — never collide or evict each other.  The execution-backend
    name rides in the memo key so backends that lower kernels
    differently can never serve each other's artifacts; the *disk* tier
    stays backend-invariant (static instruction counts depend only on
    kernel and architecture), so warm disk caches remain shared.
    """

    def __init__(self, cache_size: int = DEFAULT_COMPILE_CACHE_SIZE):
        if cache_size < 1:
            raise ValueError(f"cache_size must be positive, got {cache_size}")
        self.cache_size = cache_size
        self._cache: "OrderedDict[Tuple[int, str, str], CompiledKernel]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0

    def compile(self, kernel: KernelIR, arch: GPUArchitecture) -> CompiledKernel:
        key = (id(kernel), arch.name, default_backend_name())
        registry = _obs_metrics.REGISTRY
        if caches_enabled():
            cached = self._cache.get(key)
            if cached is not None and cached.ir is kernel:
                self.hits += 1
                if registry is not None:
                    registry.counter("cache.compile.hits").inc()
                self._cache.move_to_end(key)
                return cached
        self.misses += 1
        if registry is not None:
            registry.counter("cache.compile.misses").inc()
        blocks = None
        store = _disk_cache.disk_cache()
        disk_key = None
        if store is not None:
            disk_key = _disk_cache.compile_key(kernel, arch)
            blocks = self._blocks_from_disk(store.get(disk_key), kernel)
        from_disk = blocks is not None
        if blocks is None:
            blocks = tuple(
                CompiledBlock(
                    source=block, mix=block.mix.expanded(arch.compile_expansion)
                )
                for block in kernel.blocks
            )
        compiled = CompiledKernel(ir=kernel, arch=arch, blocks=blocks)
        if store is not None and not from_disk:
            # Stored as plain per-block count lists: a KernelIR may hold
            # closure trip rules that do not pickle, so the entry carries
            # only the expanded mixes and is re-attached to the live
            # kernel's blocks on a hit.
            store.put(
                disk_key,
                [[block.mix[t] for t in ALL_TYPES] for block in compiled.blocks],
            )
        if caches_enabled():
            self._cache[key] = compiled
            if len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return compiled

    @staticmethod
    def _blocks_from_disk(payload, kernel: KernelIR):
        """Rebuild compiled blocks from a disk entry; ``None`` if unusable."""
        if payload is _disk_cache.MISS:
            return None
        try:
            if len(payload) != len(kernel.blocks):
                return None
            if any(len(counts) != len(ALL_TYPES) for counts in payload):
                return None
            return tuple(
                CompiledBlock(
                    source=block,
                    mix=InstructionMix(dict(zip(ALL_TYPES, counts))),
                )
                for block, counts in zip(kernel.blocks, payload)
            )
        except Exception:
            return None

    def clear(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)


#: A module-level compiler instance for convenience; components that need
#: isolated caches construct their own.
DEFAULT_COMPILER = KernelCompiler()

register_cache_clearer(DEFAULT_COMPILER.clear)


def compile_kernel(kernel: KernelIR, arch: GPUArchitecture) -> CompiledKernel:
    """Compile with the shared default compiler."""
    return DEFAULT_COMPILER.compile(kernel, arch)
