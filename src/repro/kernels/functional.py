"""Functional (numpy) kernel executors.

SigmaVP is not only a timing accelerator: the paper uses it for
*functional validation* of GPU applications.  Every kernel IR can register
a numpy implementation under its signature; the runtime applies it when
the modelled kernel completes, so simulations produce real numerical
results that tests and examples can check.

The registry is keyed by the kernel *signature* — the same key Kernel
Coalescing uses to decide two launches run identical code — so a coalesced
launch can apply the one registered function to the merged data set.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

#: A functional kernel maps input arrays (and keyword parameters) to the
#: output array.
KernelFunction = Callable[..., np.ndarray]


class FunctionalRegistry:
    """Registry of numpy implementations keyed by kernel signature."""

    def __init__(self):
        self._functions: Dict[str, KernelFunction] = {}

    def register(self, signature: str, fn: KernelFunction) -> KernelFunction:
        if not signature:
            raise ValueError("kernel signature must be non-empty")
        if signature in self._functions:
            raise ValueError(f"kernel {signature!r} is already registered")
        self._functions[signature] = fn
        return fn

    def get(self, signature: str) -> Optional[KernelFunction]:
        return self._functions.get(signature)

    def require(self, signature: str) -> KernelFunction:
        fn = self._functions.get(signature)
        if fn is None:
            known = ", ".join(sorted(self._functions)) or "<none>"
            raise KeyError(f"no functional kernel {signature!r}; known: {known}")
        return fn

    def __contains__(self, signature: str) -> bool:
        return signature in self._functions

    def __len__(self) -> int:
        return len(self._functions)

    def signatures(self) -> List[str]:
        return sorted(self._functions)


#: The process-wide registry the CUDA runtime shim consults.
REGISTRY = FunctionalRegistry()


def functional_kernel(signature: str) -> Callable[[KernelFunction], KernelFunction]:
    """Decorator registering ``fn`` as the implementation of ``signature``."""

    def decorate(fn: KernelFunction) -> KernelFunction:
        REGISTRY.register(signature, fn)
        return fn

    return decorate


# ---------------------------------------------------------------------------
# Core reference kernels (the ones the paper's microbenchmarks use).
# ---------------------------------------------------------------------------


@functional_kernel("vectorAdd")
def vector_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise addition — the paper's coalescing microbenchmark."""
    return np.add(a, b)


@functional_kernel("matrixMul")
def matrix_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense matrix product — the paper's Table 1 workload."""
    return a @ b


@functional_kernel("saxpy")
def saxpy(x: np.ndarray, y: np.ndarray, alpha: float = 2.0) -> np.ndarray:
    return alpha * x + y
