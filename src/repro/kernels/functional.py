"""Functional (numpy) kernel executors.

SigmaVP is not only a timing accelerator: the paper uses it for
*functional validation* of GPU applications.  Every kernel IR can register
a numpy implementation under its signature; the runtime applies it when
the modelled kernel completes, so simulations produce real numerical
results that tests and examples can check.

The registry is keyed by the kernel *signature* — the same key Kernel
Coalescing uses to decide two launches run identical code — so a coalesced
launch can apply the one registered function to the merged data set.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: A functional kernel maps input arrays (and keyword parameters) to the
#: output array.
KernelFunction = Callable[..., np.ndarray]


class FunctionalRegistry:
    """Registry of numpy implementations keyed by kernel signature.

    ``batched=True`` marks an implementation as *replication-batchable*:
    applying it once to inputs stacked along a new leading axis
    ``(N, ...)`` produces, row for row, the bit-identical outputs of N
    independent calls.  That holds for element-wise kernels (every
    output element depends only on the same-position input elements) and
    for leading-axis-broadcasting ops like the batched matrix product —
    but **not** for kernels that reshape away the leading axis, reduce
    across the whole array, or draw shape-dependent random numbers.
    Only flagged kernels are eligible for the dispatcher's coalesced
    batch execution; everything else keeps the per-VP fallback.
    """

    def __init__(self):
        self._functions: Dict[str, KernelFunction] = {}
        self._batched: Dict[str, bool] = {}

    def register(
        self, signature: str, fn: KernelFunction, batched: bool = False
    ) -> KernelFunction:
        if not signature:
            raise ValueError("kernel signature must be non-empty")
        if signature in self._functions:
            raise ValueError(f"kernel {signature!r} is already registered")
        self._functions[signature] = fn
        self._batched[signature] = bool(batched)
        return fn

    def get(self, signature: str) -> Optional[KernelFunction]:
        return self._functions.get(signature)

    def require(self, signature: str) -> KernelFunction:
        fn = self._functions.get(signature)
        if fn is None:
            known = ", ".join(sorted(self._functions)) or "<none>"
            raise KeyError(f"no functional kernel {signature!r}; known: {known}")
        return fn

    def is_batched(self, signature: str) -> bool:
        """Whether this signature may execute as one stacked numpy op."""
        return self._batched.get(signature, False)

    def __contains__(self, signature: str) -> bool:
        return signature in self._functions

    def __len__(self) -> int:
        return len(self._functions)

    def signatures(self) -> List[str]:
        return sorted(self._functions)

    def batched_signatures(self) -> List[str]:
        return sorted(s for s, b in self._batched.items() if b)


#: The process-wide registry the CUDA runtime shim consults.
REGISTRY = FunctionalRegistry()


def functional_kernel(
    signature: str, batched: bool = False
) -> Callable[[KernelFunction], KernelFunction]:
    """Decorator registering ``fn`` as the implementation of ``signature``."""

    def decorate(fn: KernelFunction) -> KernelFunction:
        REGISTRY.register(signature, fn, batched=batched)
        return fn

    return decorate


# -- batched (stacked) execution --------------------------------------------

#: Global switch for the dispatcher's batched coalesced execution; the
#: bench harness turns it off to prove digest equality with the per-VP
#: fallback on identical inputs.
_BATCHING = True


def batching_enabled() -> bool:
    return _BATCHING


def set_batching_enabled(enabled: bool) -> bool:
    """Switch batched coalesced execution on/off; returns previous state."""
    global _BATCHING
    previous = _BATCHING
    _BATCHING = bool(enabled)
    return previous


@contextmanager
def batching_scope(enabled: bool):
    """Temporarily force batched execution on or off."""
    previous = set_batching_enabled(enabled)
    try:
        yield
    finally:
        set_batching_enabled(previous)


def run_batched(
    fn: KernelFunction,
    inputs_list: Sequence[Tuple[np.ndarray, ...]],
    params: Dict[str, Any],
) -> Optional[List[np.ndarray]]:
    """Execute N member calls as ONE call over ``(N, ...)`` stacked inputs.

    Back-compat shim: the stacking logic now lives with the execution
    backends (:func:`repro.backend.numpy_backend.stacked_rows`), where
    the dispatcher reaches it through ``launch_batched``.  Returns the
    per-member output rows, or ``None`` when the preconditions for a
    well-defined batch do not hold — callers treat ``None`` as "fall
    back to per-VP execution".
    """
    from ..backend.numpy_backend import stacked_rows

    return stacked_rows(fn, [tuple(inputs) for inputs in inputs_list], dict(params))


# ---------------------------------------------------------------------------
# Core reference kernels (the ones the paper's microbenchmarks use).
# ---------------------------------------------------------------------------


@functional_kernel("vectorAdd", batched=True)
def vector_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise addition — the paper's coalescing microbenchmark."""
    return np.add(a, b)


@functional_kernel("matrixMul", batched=True)
def matrix_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense matrix product — the paper's Table 1 workload.

    ``@`` broadcasts over leading axes, so the stacked ``(N, d, d)``
    batch is the same per-pair GEMM N times — batchable.
    """
    return a @ b


@functional_kernel("saxpy", batched=True)
def saxpy(x: np.ndarray, y: np.ndarray, alpha: float = 2.0) -> np.ndarray:
    return alpha * x + y
