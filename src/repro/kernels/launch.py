"""Launch configuration: grids, blocks, and data sizes.

CUDA kernels execute as a *grid* of thread *blocks*.  The paper's Eq. (9)
and Fig. 10(b) hinge on the relation between the data size, the grid size,
and the number of threads the GPU can hold simultaneously (the "alignment
unit" lambda), so launch geometry is modelled explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ir import KernelIR, LaunchContext, ceil_div


@dataclass(frozen=True)
class LaunchConfig:
    """Geometry and data volume of one kernel launch."""

    grid_size: int
    block_size: int
    elements: int
    problem_size: float = 0.0

    def __post_init__(self) -> None:
        if self.grid_size <= 0:
            raise ValueError(f"grid_size must be positive, got {self.grid_size}")
        if self.block_size <= 0:
            raise ValueError(f"block_size must be positive, got {self.block_size}")
        if self.elements < 0:
            raise ValueError(f"elements must be non-negative, got {self.elements}")

    @property
    def threads(self) -> int:
        return self.grid_size * self.block_size

    def context(self) -> LaunchContext:
        return LaunchContext(
            elements=self.elements,
            threads=self.threads,
            problem_size=self.problem_size,
        )

    def merged_with(self, other: "LaunchConfig") -> "LaunchConfig":
        """Launch geometry after coalescing two identical-kernel launches.

        Coalescing concatenates the data sets, so element counts add and the
        grid grows to cover the combined data with the same block size
        (paper Fig. 5/6).  Block sizes must match — the launches run the
        same kernel code.
        """
        if self.block_size != other.block_size:
            raise ValueError(
                "cannot merge launches with different block sizes: "
                f"{self.block_size} vs {other.block_size}"
            )
        elements = self.elements + other.elements
        grid = self.grid_size + other.grid_size
        return LaunchConfig(
            grid_size=grid,
            block_size=self.block_size,
            elements=elements,
            problem_size=max(self.problem_size, other.problem_size),
        )


def launch_for_elements(
    elements: int,
    block_size: int = 256,
    elements_per_thread: float = 1.0,
    problem_size: float = 0.0,
) -> LaunchConfig:
    """Build the natural launch covering ``elements`` data items."""
    if elements <= 0:
        raise ValueError(f"elements must be positive, got {elements}")
    threads_needed = ceil_div(elements, max(1, int(elements_per_thread)))
    grid = max(1, ceil_div(threads_needed, block_size))
    return LaunchConfig(
        grid_size=grid,
        block_size=block_size,
        elements=elements,
        problem_size=problem_size,
    )


def natural_launch(kernel: KernelIR, elements: int, block_size: int = 256,
                   problem_size: float = 0.0) -> LaunchConfig:
    """Launch for ``kernel`` sized from its elements-per-thread ratio."""
    return launch_for_elements(
        elements,
        block_size=block_size,
        elements_per_thread=kernel.elements_per_thread,
        problem_size=problem_size,
    )
