"""Kernel intermediate representation.

SigmaVP's profile-based execution analysis (paper Section 4) reasons about
kernels as a set of *program blocks*: "the largest portion of the kernel
that has a distant execution path determined by control instructions".
Each block has a static per-architecture instruction count mu{b,T} and a
dynamic iteration count lambda_b.  This module defines the architecture-
independent IR; :mod:`repro.kernels.compiler` lowers it per architecture.

Instruction types follow the paper's Eq. (1) taxonomy:
``i in {FP32, FP64, Int, Bit, B, Ld, St}``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple


class InstructionType(enum.Enum):
    """The seven instruction classes of the paper's Eq. (1)."""

    FP32 = "fp32"
    FP64 = "fp64"
    INT = "int"
    BIT = "bit"
    BRANCH = "branch"
    LOAD = "load"
    STORE = "store"

    def __repr__(self) -> str:
        return f"InstructionType.{self.name}"


#: Frequently-iterated tuple of all instruction types, in Eq. (1) order.
ALL_TYPES: Tuple[InstructionType, ...] = (
    InstructionType.FP32,
    InstructionType.FP64,
    InstructionType.INT,
    InstructionType.BIT,
    InstructionType.BRANCH,
    InstructionType.LOAD,
    InstructionType.STORE,
)

#: Memory-access instruction types (the ones the data-cache model covers).
MEMORY_TYPES: Tuple[InstructionType, ...] = (
    InstructionType.LOAD,
    InstructionType.STORE,
)


class InstructionMix:
    """Per-type instruction counts for one execution of a program block.

    Counts are per *thread* per block execution and may be fractional:
    an average over threads (e.g. a branch taken by half the threads
    contributes 0.5).
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: Optional[Mapping[InstructionType, float]] = None, **kwargs: float):
        merged: Dict[InstructionType, float] = {}
        if counts:
            for itype, value in counts.items():
                merged[self._coerce(itype)] = merged.get(self._coerce(itype), 0.0) + float(value)
        for name, value in kwargs.items():
            itype = self._coerce(name)
            merged[itype] = merged.get(itype, 0.0) + float(value)
        for itype, value in merged.items():
            if value < 0:
                raise ValueError(f"negative instruction count for {itype}: {value}")
        self._counts = {t: merged.get(t, 0.0) for t in ALL_TYPES}

    @staticmethod
    def _coerce(key) -> InstructionType:
        if isinstance(key, InstructionType):
            return key
        try:
            return InstructionType[str(key).upper()]
        except KeyError:
            raise KeyError(f"unknown instruction type {key!r}") from None

    def __getitem__(self, itype: InstructionType) -> float:
        return self._counts[self._coerce(itype)]

    def __iter__(self):
        return iter(self._counts.items())

    def __eq__(self, other) -> bool:
        if not isinstance(other, InstructionMix):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:
        nonzero = {t.name: v for t, v in self._counts.items() if v}
        return f"InstructionMix({nonzero})"

    @property
    def total(self) -> float:
        """Total instructions across all types."""
        return sum(self._counts.values())

    @property
    def memory_accesses(self) -> float:
        return sum(self._counts[t] for t in MEMORY_TYPES)

    @property
    def flops(self) -> float:
        return self._counts[InstructionType.FP32] + self._counts[InstructionType.FP64]

    def scaled(self, factor: float) -> "InstructionMix":
        """A new mix with every count multiplied by ``factor``."""
        if factor < 0:
            raise ValueError(f"negative scale factor {factor}")
        return InstructionMix({t: v * factor for t, v in self._counts.items()})

    def combined(self, other: "InstructionMix") -> "InstructionMix":
        """Element-wise sum of two mixes."""
        return InstructionMix({t: self._counts[t] + other._counts[t] for t in ALL_TYPES})

    def expanded(self, factors: Mapping[InstructionType, float]) -> "InstructionMix":
        """Apply per-type expansion factors (used by the compiler)."""
        return InstructionMix(
            {t: self._counts[t] * float(factors.get(t, 1.0)) for t in ALL_TYPES}
        )

    def as_dict(self) -> Dict[InstructionType, float]:
        return dict(self._counts)


#: A trip-count rule maps a :class:`LaunchConfig`-like context to the number
#: of times one thread executes the block.  Plain numbers are allowed for
#: fixed trip counts.
TripCount = Callable[["LaunchContext"], float]


@dataclass(frozen=True)
class LaunchContext:
    """The dynamic quantities trip-count rules may depend on.

    ``elements`` is the number of data elements the launch processes;
    ``threads`` the total thread count; ``problem_size`` an app-specific
    scalar (e.g. the matrix dimension for matrixMul).
    """

    elements: int
    threads: int
    problem_size: float = 0.0

    @property
    def elements_per_thread(self) -> float:
        if self.threads <= 0:
            return 0.0
        return self.elements / self.threads


@dataclass(frozen=True)
class ProgramBlock:
    """A straight-line region of the kernel with one instruction mix.

    ``trips`` gives the per-thread iteration count lambda_b, either as a
    constant or as a rule evaluated against the launch context (the
    reproduction's analog of the paper's dynamically-inserted PTX
    iteration counters, footnote 2).
    """

    name: str
    mix: InstructionMix
    trips: object = 1.0  # float | TripCount

    def trip_count(self, ctx: LaunchContext) -> float:
        if callable(self.trips):
            value = float(self.trips(ctx))
        else:
            value = float(self.trips)
        if value < 0:
            raise ValueError(f"block {self.name!r} produced negative trip count {value}")
        return value


@dataclass(frozen=True)
class MemoryFootprint:
    """Data-movement characteristics of one kernel launch.

    These drive the copy-engine times (bytes in/out) and the probabilistic
    data-cache model (working set, locality).

    ``locality`` in [0, 1] is the fraction of memory accesses that enjoy
    short reuse distance (hit in cache when the working set fits);
    ``coalesced_fraction`` is the fraction of accesses that are
    memory-coalesced at warp level (distinct from SigmaVP's *kernel*
    coalescing — see paper footnote 1).
    """

    bytes_in: int
    bytes_out: int
    working_set_bytes: int
    locality: float = 0.7
    coalesced_fraction: float = 0.9

    def __post_init__(self) -> None:
        if self.bytes_in < 0 or self.bytes_out < 0 or self.working_set_bytes < 0:
            raise ValueError("byte counts must be non-negative")
        if not 0.0 <= self.locality <= 1.0:
            raise ValueError(f"locality must be in [0,1], got {self.locality}")
        if not 0.0 <= self.coalesced_fraction <= 1.0:
            raise ValueError(
                f"coalesced_fraction must be in [0,1], got {self.coalesced_fraction}"
            )

    def scaled(self, factor: float) -> "MemoryFootprint":
        """Footprint for a proportionally larger/smaller data set."""
        if factor < 0:
            raise ValueError(f"negative scale factor {factor}")
        return MemoryFootprint(
            bytes_in=int(round(self.bytes_in * factor)),
            bytes_out=int(round(self.bytes_out * factor)),
            working_set_bytes=int(round(self.working_set_bytes * factor)),
            locality=self.locality,
            coalesced_fraction=self.coalesced_fraction,
        )

    def merged(self, other: "MemoryFootprint") -> "MemoryFootprint":
        """Footprint of two coalesced data sets processed by one launch.

        Byte totals add; the *working set* does not — the device holds
        the same number of resident blocks either way, so the active set
        at any instant matches the larger member's, which is what keeps
        a coalesced launch from (wrongly) appearing to thrash the cache.
        """
        total_in = self.bytes_in + other.bytes_in
        total_out = self.bytes_out + other.bytes_out
        weight_self = self.bytes_in + self.bytes_out or 1
        weight_other = other.bytes_in + other.bytes_out or 1
        total_weight = weight_self + weight_other
        return MemoryFootprint(
            bytes_in=total_in,
            bytes_out=total_out,
            working_set_bytes=max(self.working_set_bytes, other.working_set_bytes),
            locality=(self.locality * weight_self + other.locality * weight_other)
            / total_weight,
            coalesced_fraction=(
                self.coalesced_fraction * weight_self
                + other.coalesced_fraction * weight_other
            )
            / total_weight,
        )


@dataclass(frozen=True)
class KernelIR:
    """An architecture-independent kernel description.

    ``signature`` identifies the kernel *code*: two launches with the same
    signature execute the same instructions over different data, which is
    exactly the condition Kernel Coalescing requires (paper Section 3).
    """

    name: str
    blocks: Tuple[ProgramBlock, ...]
    footprint: MemoryFootprint
    signature: str = ""
    elements_per_thread: float = 1.0
    #: Whether Kernel Coalescing may merge launches of this kernel.
    #: Kernels whose memory-access/management pattern defeats the merge
    #: (paper Section 5: convolutionSeparable, dct8x8, ...) set False.
    coalescible: bool = True

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ValueError(f"kernel {self.name!r} has no program blocks")
        if not self.signature:
            object.__setattr__(self, "signature", self.name)

    def block_names(self) -> List[str]:
        return [b.name for b in self.blocks]

    def per_thread_mix(self, ctx: LaunchContext) -> InstructionMix:
        """Dynamic per-thread instruction mix: sum over blocks of trips*mix."""
        mix = InstructionMix()
        for block in self.blocks:
            mix = mix.combined(block.mix.scaled(block.trip_count(ctx)))
        return mix

    def with_footprint(self, footprint: MemoryFootprint) -> "KernelIR":
        return KernelIR(
            name=self.name,
            blocks=self.blocks,
            footprint=footprint,
            signature=self.signature,
            elements_per_thread=self.elements_per_thread,
            coalescible=self.coalescible,
        )


def uniform_kernel(
    name: str,
    per_thread: Mapping[InstructionType, float],
    footprint: MemoryFootprint,
    trips: object = 1.0,
    signature: str = "",
    coalescible: bool = True,
    elements_per_thread: float = 1.0,
) -> KernelIR:
    """Convenience constructor for single-block kernels."""
    block = ProgramBlock(name=f"{name}.body", mix=InstructionMix(per_thread), trips=trips)
    return KernelIR(
        name=name,
        blocks=(block,),
        footprint=footprint,
        signature=signature or name,
        coalescible=coalescible,
        elements_per_thread=elements_per_thread,
    )


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division, used throughout the launch/alignment math."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def align_up(value: int, unit: int) -> int:
    """Round ``value`` up to a multiple of ``unit`` (Eq. 9's alignment)."""
    return ceil_div(value, unit) * unit
