"""The public submission facade: one request schema, three ways to run.

Historically every layer re-assembled the same scenario description by
hand: ``repro run`` built ``SigmaVP(...)`` kwargs, ``repro trace`` and
``repro metrics`` built ``FarmJob`` kwargs, and the bench/figure code
built yet another copy.  :class:`RunRequest` is the single, frozen,
schema-versioned description of "run this scenario"; everything else is
a projection of it:

* :func:`run` — execute locally through the scenario farm's
  ``run_job`` path and return the value plus its results digest;
* :func:`scenario` — execute in-process and return the rich
  :class:`~repro.core.scenarios.ScenarioResult` (the CLI's ``run`` /
  ``account`` paths need the live framework for gantt/accounting);
* :func:`submit` / :func:`connect` — hand the request to a running
  ``repro serve`` daemon over its Unix socket
  (:mod:`repro.serve`); the wire protocol is just the request's JSON
  form plus event frames, so the local and remote paths cannot drift.

**Identity contract.**  :meth:`RunRequest.to_farm_job` emits exactly
the keyword arguments the legacy CLI plumbing emitted: scenario-shaping
fields always, tuning fields only when they differ from their defaults.
Config-hash keys — and therefore disk-cache entries, deterministic
seeds, and results digests — are byte-identical to every previously
recorded run.  ``tenant`` and ``qos`` are service-level routing, not
scenario identity: two tenants submitting the same scenario share one
config hash, one cache entry, and one digest.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .core.scenarios import ScenarioResult
    from .exec.farm import FarmJob
    from .serve.client import ServeClient

__all__ = [
    "SCHEMA_VERSION",
    "RequestError",
    "RunRequest",
    "RunResult",
    "connect",
    "run",
    "scenario",
    "submit",
]

#: Version of the :class:`RunRequest` wire schema.  Bump on any change
#: that alters field meaning; additions of defaulted fields keep the
#: version (old daemons reject unknown fields with a structured error,
#: which is the compatibility signal clients act on).
SCHEMA_VERSION = 1

#: Transports a request may name (the farm's resolve_transport accepts
#: the same spellings).
_TRANSPORTS = ("socket", "shm", "shared-memory")

#: Fields that always enter the farm-job kwargs (scenario shape).
_ALWAYS_KEYS = (
    "app", "n_vps", "interleaving", "coalescing", "transport",
    "n_host_gpus",
)

#: Fields that enter the kwargs only when non-default, so default runs
#: keep their pre-existing config-hash keys (the legacy ``_sched_kwargs``
#: rule, now in one place).
_OPTIONAL_KEYS = (
    "max_batch", "scale_elements", "scale_iterations", "functional",
    "policy", "placement", "shards", "backend",
)

#: Service-routing fields excluded from scenario identity.
_ROUTING_KEYS = ("schema", "tenant", "qos")


class RequestError(ValueError):
    """A submission that cannot be accepted, with a structured code.

    ``code`` is the machine-readable reason (``bad-schema``,
    ``bad-field``, ``bad-value``); the daemon maps it straight onto its
    error frames so local validation and remote rejection read the same.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass(frozen=True)
class RunRequest:
    """One versioned, JSON-round-trippable scenario submission.

    The field set mirrors ``repro.exec.jobs:scenario_summary`` — the
    farm-job function every execution path ultimately calls — plus the
    service-routing fields (``tenant``, ``qos``) the daemon schedules
    tenants by.
    """

    #: Workload name from the catalog (``repro list``).
    app: str
    #: Number of virtual platforms to multiplex.
    n_vps: int = 8
    #: Kernel Interleaving on/off (paper Fig. 3).
    interleaving: bool = True
    #: Kernel Coalescing on/off (paper Fig. 5).
    coalescing: bool = True
    #: IPC transport: ``socket``, ``shm`` or ``shared-memory``.
    transport: str = "socket"
    #: Host GPUs to multiplex.
    n_host_gpus: int = 1
    #: Coalescer batch cap.
    max_batch: int = 64
    #: Optional workload rescaling (elements / iterations).
    scale_elements: Optional[int] = None
    scale_iterations: Optional[int] = None
    #: Execute kernels numerically (numpy) instead of timing-only.
    functional: bool = False
    #: Registered scheduling policy / placement names (``repro
    #: policies``); ``None`` keeps the legacy derived defaults.
    policy: Optional[str] = None
    placement: Optional[str] = None
    #: Partitioned event loop: a domain count, ``"per-gpu"`` or
    #: ``"per-vp-group"`` (digest-identical to serial by construction).
    shards: Optional[Union[int, str]] = None
    #: Registered execution backend name (``repro backends``).
    backend: Optional[str] = None
    #: Service routing (never part of scenario identity): the tenant a
    #: daemon accounts this job to, and its QoS tier (0 = most urgent).
    tenant: str = "default"
    qos: Optional[int] = None
    #: Wire-schema version; see :data:`SCHEMA_VERSION`.
    schema: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.schema != SCHEMA_VERSION:
            raise RequestError(
                "bad-schema",
                f"unsupported RunRequest schema {self.schema!r}; this "
                f"build speaks schema {SCHEMA_VERSION}",
            )
        if not self.app or not isinstance(self.app, str):
            raise RequestError("bad-value", f"app must be a non-empty string, got {self.app!r}")
        for name, minimum in (("n_vps", 1), ("n_host_gpus", 1), ("max_batch", 1)):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
                raise RequestError(
                    "bad-value", f"{name} must be an int >= {minimum}, got {value!r}"
                )
        if self.transport not in _TRANSPORTS:
            raise RequestError(
                "bad-value",
                f"unknown transport {self.transport!r}; known: "
                f"{', '.join(_TRANSPORTS)}",
            )
        for name in ("scale_elements", "scale_iterations"):
            value = getattr(self, name)
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool) or value < 1
            ):
                raise RequestError(
                    "bad-value", f"{name} must be None or an int >= 1, got {value!r}"
                )
        if self.shards is not None and not (
            (isinstance(self.shards, int) and not isinstance(self.shards, bool)
             and self.shards >= 1)
            or self.shards in ("per-gpu", "per-vp-group")
        ):
            raise RequestError(
                "bad-value",
                "shards must be None, a positive domain count, 'per-gpu' "
                f"or 'per-vp-group', got {self.shards!r}",
            )
        if not self.tenant or not isinstance(self.tenant, str) or "\n" in self.tenant:
            raise RequestError(
                "bad-value", f"tenant must be a non-empty line, got {self.tenant!r}"
            )
        if self.qos is not None and (
            not isinstance(self.qos, int) or isinstance(self.qos, bool) or self.qos < 0
        ):
            raise RequestError(
                "bad-value", f"qos must be None or an int >= 0, got {self.qos!r}"
            )

    # -- identity ----------------------------------------------------------

    def job_kwargs(self) -> Dict[str, Any]:
        """The canonical ``scenario_summary`` kwargs for this request.

        Scenario-shaping fields always appear; tuning fields appear only
        when non-default (the legacy ``_sched_kwargs`` rule), so default
        runs keep the config-hash keys every committed BENCH_*.json and
        disk-cache entry was recorded under.
        """
        kwargs: Dict[str, Any] = {key: getattr(self, key) for key in _ALWAYS_KEYS}
        defaults = _field_defaults()
        for key in _OPTIONAL_KEYS:
            value = getattr(self, key)
            if value != defaults[key]:
                kwargs[key] = value
        return kwargs

    def to_farm_job(self, label: str = "") -> "FarmJob":
        """This request as a farm job (config-hash identity included)."""
        from .exec.farm import FarmJob

        return FarmJob(
            fn="repro.exec.jobs:scenario_summary",
            kwargs=self.job_kwargs(),
            label=label or f"{self.app}:{self.n_vps}vps",
        )

    @property
    def config_hash(self) -> str:
        """The farm's config-hash identity for this scenario."""
        return self.to_farm_job().key

    @property
    def seed(self) -> int:
        """Deterministic per-scenario seed (derived from the hash)."""
        return self.to_farm_job().seed

    # -- wire format -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Full explicit JSON form (every field, schema included)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunRequest":
        """Parse a wire payload; structured errors on anything off.

        Unknown fields are rejected (not silently dropped): a newer
        client talking to an older daemon must find out, not get a
        subtly different scenario.  A missing ``schema`` defaults to the
        current version; an unsupported one raises ``bad-schema``.
        """
        if not isinstance(payload, dict):
            raise RequestError(
                "bad-frame", f"request payload must be an object, got {type(payload).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise RequestError(
                "bad-field",
                f"unknown RunRequest field(s): {', '.join(unknown)} "
                f"(schema {SCHEMA_VERSION} speaks: {', '.join(sorted(known))})",
            )
        schema = payload.get("schema", SCHEMA_VERSION)
        if not isinstance(schema, int) or schema != SCHEMA_VERSION:
            raise RequestError(
                "bad-schema",
                f"unsupported RunRequest schema {schema!r}; this build "
                f"speaks schema {SCHEMA_VERSION}",
            )
        if "app" not in payload:
            raise RequestError("bad-field", "RunRequest requires 'app'")
        shards = payload.get("shards")
        if isinstance(shards, float) and shards.is_integer():
            payload = dict(payload, shards=int(shards))
        try:
            return cls(**payload)
        except TypeError as exc:  # non-keyword-able payload shapes
            raise RequestError("bad-frame", str(exc)) from None

    def with_overrides(self, **overrides: Any) -> "RunRequest":
        """A copy with the given fields replaced (validation re-runs)."""
        return dataclasses.replace(self, **overrides)


def _coerce_shards(value: Any) -> Optional[Union[int, str]]:
    """Narrow a loosely-typed ``shards`` value to the request's type.

    Callers with ``object``-typed plumbing (the farm-job surface) route
    through this; full validation still happens in ``__post_init__``.
    """
    if value is None or isinstance(value, (int, str)):
        return value
    raise RequestError(
        "bad-value",
        f"shards must be None, a domain count or a plan name, got {value!r}",
    )


def _field_defaults() -> Dict[str, Any]:
    """Default value per RunRequest field (for the non-default rule)."""
    return {
        f.name: (f.default if f.default is not dataclasses.MISSING else None)
        for f in fields(RunRequest)
    }


@dataclass(frozen=True)
class RunResult:
    """Outcome of :func:`run`: the value and its digest identity."""

    #: The request that produced this result.
    request: RunRequest
    #: The JSON-able scenario summary (the digest wire format).
    value: Dict[str, Any]
    #: ``results_digest`` over the single (config-hash, value) pair —
    #: bit-identical across the CLI, :func:`run`, and the daemon.
    digest: str
    #: Config-hash identity the value was produced under.
    config_hash: str
    #: Host wall-clock spent executing, in seconds.
    duration_s: float
    #: pid of the process that executed the scenario.
    worker_pid: int = 0


def run(request: RunRequest) -> RunResult:
    """Execute a request locally through the farm's ``run_job`` path.

    This is the exact code path a farm worker and the ``repro serve``
    daemon execute — same config-hash key, same deterministic seed, same
    disk-cache layers — so the returned digest is bit-identical to a
    daemon-produced one for the same request.
    """
    from .exec.farm import results_digest, run_job, warm_worker

    job = request.to_farm_job()
    warm_worker()
    result = run_job(job)
    return RunResult(
        request=request,
        value=result.value,
        digest=results_digest([result]),
        config_hash=job.key,
        duration_s=result.duration_s,
        worker_pid=result.worker_pid,
    )


def scenario(request: RunRequest) -> "ScenarioResult":
    """Execute a request in-process; rich result, live framework.

    The :class:`~repro.core.scenarios.ScenarioResult` carries the live
    framework in ``extras["framework"]`` — what the CLI's ``run`` and
    ``account`` paths need for gantt rendering and per-VP accounting.
    ``result.summary()`` is byte-identical to the ``value`` of
    :func:`run` for the same request (that equality is pinned by the
    service test suite).
    """
    from .core.scenarios import run_sigma_vp
    from .exec.jobs import _spec, resolve_transport

    return run_sigma_vp(
        _spec(request.app, request.scale_elements, request.scale_iterations),
        n_vps=request.n_vps,
        interleaving=request.interleaving,
        coalescing=request.coalescing,
        transport=resolve_transport(request.transport),
        max_batch=request.max_batch,
        n_host_gpus=request.n_host_gpus,
        functional=request.functional,
        policy=request.policy,
        placement=request.placement,
        shards=request.shards,
        backend=request.backend,
    )


def connect(socket_path: Optional[str] = None) -> "ServeClient":
    """Open a client connection to a running ``repro serve`` daemon."""
    from .serve.client import ServeClient

    return ServeClient.connect(socket_path)


def submit(
    request: RunRequest,
    socket_path: Optional[str] = None,
    wait: bool = False,
) -> Dict[str, Any]:
    """Submit a request to a running daemon; returns the job record.

    With ``wait=True`` blocks until the job reaches a terminal state and
    returns the final record (including the result value and digest).
    """
    with connect(socket_path) as client:
        record = client.submit(request)
        if wait:
            record = client.wait(record["job_id"])
        return record
