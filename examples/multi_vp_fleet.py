#!/usr/bin/env python3
"""Simulating a fleet of eight GPU-equipped embedded devices.

This is the paper's headline scenario (Fig. 11): eight virtual platforms
each run the same GPU application.  We compare the three ways to
simulate them —

1. software GPU emulation on the binary-translated VPs (the common
   practice the paper's introduction criticizes),
2. SigmaVP's plain host-GPU multiplexing,
3. SigmaVP with Kernel Interleaving and Kernel Coalescing —

and print the speedups, per-application, the way Fig. 11 reports them.

Run:  python examples/multi_vp_fleet.py [app ...]
"""

import sys

from repro.analysis import render_table
from repro.core.scenarios import run_emulation, run_sigma_vp
from repro.workloads import SUITE, get_workload

DEFAULT_APPS = ("BlackScholes", "matrixMul", "SobelFilter", "mergeSort", "simpleGL")
N_VPS = 8


def evaluate(app_name: str):
    spec = get_workload(app_name)
    emul = run_emulation(spec, n_instances=N_VPS)
    base = run_sigma_vp(spec, n_vps=N_VPS, interleaving=False, coalescing=False)
    opt = run_sigma_vp(spec, n_vps=N_VPS, interleaving=True, coalescing=True)
    return (
        app_name,
        emul.total_ms / 1e3,
        base.total_ms,
        opt.total_ms,
        emul.total_ms / base.total_ms,
        emul.total_ms / opt.total_ms,
    )


def main() -> None:
    apps = sys.argv[1:] or list(DEFAULT_APPS)
    unknown = [a for a in apps if a not in SUITE]
    if unknown:
        raise SystemExit(f"unknown apps {unknown}; choose from {sorted(SUITE)}")

    rows = []
    for app in apps:
        print(f"running {app} on {N_VPS} VPs (emulation, SigmaVP, "
              f"SigmaVP+optimizations)...")
        rows.append(evaluate(app))

    print()
    print(render_table(
        ["App", "Emulation (s)", "SigmaVP (ms)", "Optimized (ms)",
         "Speedup", "Opt. speedup"],
        rows,
        title=f"Fig-11-style comparison, {N_VPS} VPs "
              "(paper band: 622-2045x plain, 1098-6304x optimized)",
    ))


if __name__ == "__main__":
    main()
