#!/usr/bin/env python3
"""Replaying a recorded CUDA API trace through SigmaVP.

The interception layer's binary-compatibility promise, made practical:
record an application's CUDA runtime calls (any LD_PRELOAD interposer
can), describe them in the small JSON trace format of
``repro.workloads.trace``, and replay them — timing and functionality —
through the full SigmaVP pipeline, with self-timing via cudaEvents.

Run:  python examples/trace_replay.py
"""

import json

import numpy as np

from repro.core import SHARED_MEMORY, SigmaVP
from repro.kernels.functional import REGISTRY
from repro.workloads.trace import parse_trace, replay

#: A small recorded session: a saxpy-style pipeline with two launches.
TRACE = {
    "name": "recorded-saxpy",
    "calls": [
        {"op": "malloc", "buf": "X", "nbytes": 32768},
        {"op": "malloc", "buf": "Y", "nbytes": 32768},
        {"op": "malloc", "buf": "OUT", "nbytes": 32768},
        {"op": "cpu", "ops": 2e5},
        {"op": "h2d", "buf": "X", "nbytes": 32768},
        {"op": "h2d", "buf": "Y", "nbytes": 32768},
        {
            "op": "launch",
            "kernel": {
                "name": "saxpy-k",
                "signature": "saxpy",
                "mix": {"fp32": 2, "load": 2, "store": 1, "int": 2},
                "working_set": 98304,
                "locality": 0.3,
            },
            "grid": 32, "block": 256, "elements": 8192,
            "args": ["X", "Y"], "out": "OUT",
            "params": {"alpha": 3.0},
        },
        {"op": "launch", "kernel": "saxpy-k", "grid": 32, "block": 256,
         "elements": 8192, "args": ["OUT", "Y"], "out": "OUT",
         "params": {"alpha": 1.0}},
        {"op": "sync"},
        {"op": "d2h", "buf": "OUT", "nbytes": 32768},
        {"op": "free", "buf": "X"},
        {"op": "free", "buf": "Y"},
    ],
}


def main() -> None:
    trace = parse_trace(TRACE)
    print(f"trace {trace.name!r}: {len(trace)} API calls, "
          f"{trace.kernel_launches()} kernel launches, "
          f"{len(trace.kernels)} distinct kernels")

    framework = SigmaVP(n_vps=1, transport=SHARED_MEMORY, registry=REGISTRY)
    session = framework.session("vp0")

    x = np.arange(8192, dtype=np.float32)
    y = np.full(8192, 2.0, dtype=np.float32)
    app = replay(trace, session.runtime, inputs={"X": x, "Y": y})
    process = session.vp.run_app(app)
    total_ms = framework.run_until([process])

    expected = (3.0 * x + y) + y  # saxpy(3, x, y) then saxpy(1, ., y)
    assert np.allclose(process.value, expected)
    print(f"replayed in {total_ms:.3f} ms of simulated time")
    print(f"API calls intercepted: {session.runtime.calls}")
    print("functional result matches the saxpy composition: OK")
    print()
    print("trace JSON (save this shape from your own interposer):")
    print(json.dumps(TRACE["calls"][:3], indent=2))


if __name__ == "__main__":
    main()
