#!/usr/bin/env python3
"""A PhysX-style particle engine through the OpenCL facade.

The paper names two extensions it plans: other GPU programming platforms
("including OpenCL") and CUDA-related SDKs ("such as PhysX, a physics
engine").  This example exercises both at once: a particle-dynamics
simulation written against the OpenCL-style API, running through the
full SigmaVP pipeline on a virtual platform, with the positions verified
against the numpy reference each run.

Run:  python examples/physics_engine.py
"""

import numpy as np

from repro.core import SHARED_MEMORY, SigmaVP
from repro.kernels.functional import REGISTRY
from repro.vp import OpenCLRuntime, SigmaVPBackend
from repro.workloads.physics import make_physics_kernel, physx_step_fn

N_PARTICLES = 8192
N_STEPS = 12


def particle_app(cl: OpenCLRuntime, initial: np.ndarray):
    """The engine's main loop, OpenCL-style."""

    def app():
        kernel = make_physics_kernel(N_PARTICLES)
        state_buf = yield from cl.create_buffer(initial.nbytes)
        yield from cl.enqueue_write_buffer(state_buf, initial, blocking=False)
        for _step in range(N_STEPS):
            yield from cl.enqueue_nd_range_kernel(
                kernel,
                global_size=N_PARTICLES,
                local_size=256,
                args=[state_buf],
                out=state_buf,  # the step updates the state in place
            )
        yield from cl.finish()
        result = yield from cl.enqueue_read_buffer(
            state_buf, nbytes=initial.nbytes
        )
        return result.value

    return app


def main() -> None:
    rng = np.random.default_rng(42)
    initial = np.column_stack([
        rng.uniform(-1.0, 1.0, N_PARTICLES),
        rng.uniform(0.5, 2.0, N_PARTICLES),
        rng.normal(0.0, 0.01, N_PARTICLES),
        rng.normal(0.0, 0.01, N_PARTICLES),
    ]).astype(np.float32)

    framework = SigmaVP(n_vps=1, transport=SHARED_MEMORY, registry=REGISTRY)
    session = framework.session("vp0")
    cl = OpenCLRuntime(
        SigmaVPBackend(framework.env, session.vp, framework.ipc,
                       framework.handles)
    )
    process = session.vp.run_app(particle_app(cl, initial))
    total_ms = framework.run_until([process])
    final = process.value

    # Reference: step the numpy model the same number of times.
    expected = initial
    for _ in range(N_STEPS):
        expected = physx_step_fn(expected)
    assert np.allclose(final, expected, rtol=1e-5)

    print(f"simulated {N_PARTICLES} particles x {N_STEPS} steps through "
          f"SigmaVP in {total_ms:.3f} ms of simulated time")
    print(f"OpenCL commands issued: {cl.commands}")
    print(f"mean height: {initial[:, 1].mean():.3f} -> {final[:, 1].mean():.3f} "
          "(falling, as physics demands)")
    print("functional check against the numpy reference: OK")


if __name__ == "__main__":
    main()
