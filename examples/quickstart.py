#!/usr/bin/env python3
"""Quickstart: simulate two virtual platforms sharing the host GPU.

Builds a SigmaVP framework, attaches two QEMU-ARM-style virtual
platforms, runs a vectorAdd application on both (the same application
source would run on real hardware — the runtime intercepts its CUDA
calls), and prints timing plus the functional result check.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SigmaVP
from repro.core.ipc import SHARED_MEMORY
from repro.workloads.linalg import make_vectoradd_spec


def main() -> None:
    # A framework = one host machine: GPU model, IPC manager, job queue,
    # re-scheduler, coalescer, dispatcher, profiler.
    framework = SigmaVP(n_vps=2, transport=SHARED_MEMORY)

    # vectorAdd over 64k floats, four iterations of copy/launch/copy.
    spec = make_vectoradd_spec(elements=65536, iterations=4)
    total_ms = framework.run_workload(spec)

    print(f"simulated {len(framework.sessions)} virtual platforms")
    print(f"total simulated time: {total_ms:.3f} ms")

    for name in sorted(framework.sessions):
        session = framework.session(name)
        print(f"  {name}: finished at {session.vp.finished_at_ms:.3f} ms, "
              f"guest CPU time {session.vp.guest_cpu_ms:.3f} ms")

    # The coalescer merged the two VPs' identical kernels into one launch.
    stats = framework.coalescer.stats
    print(f"coalescer: {stats.merges} merges, "
          f"{stats.kernels_coalesced} kernels coalesced")

    # Functional check: the simulation actually computed the sums.
    result = framework.session("vp0").processes[0].value
    a, b = spec.build_inputs(0)
    assert np.allclose(result, a + b)
    print("functional check: vp0's result equals a + b  [OK]")

    # The profiler collected real execution profiles for estimation.
    profile = framework.profiler.last_profile("vectorAdd")
    print(f"profiler: last vectorAdd launch took {profile.time_ms:.4f} ms "
          f"({profile.elapsed_cycles:,.0f} cycles, "
          f"{profile.stall_fraction:.0%} stalled)")


if __name__ == "__main__":
    main()
