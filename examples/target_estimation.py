#!/usr/bin/env python3
"""Estimating embedded-GPU time and power from host profiles.

The paper's Section 4 use case: a designer wants to know how a kernel
will perform on a Tegra K1 *before* having the board.  SigmaVP executes
the kernel on the host GPU, reads the profiler, compiles the kernel for
the target, and derives three increasingly-refined cycle estimates
(C, C', C'') plus an Eq.-6 power estimate.

This example runs the flow for the paper's four estimation apps on both
host GPUs and prints Fig.-12/13-style tables, including the reference
("measured") values from the target model.

Run:  python examples/target_estimation.py
"""

from repro.analysis import render_table
from repro.core.estimation import ExecutionAnalyzer
from repro.gpu import GRID_K520, QUADRO_4000, TEGRA_K1
from repro.workloads import get_workload
from repro.workloads.catalog import ESTIMATION_APPS


def main() -> None:
    for host in (QUADRO_4000, GRID_K520):
        analyzer = ExecutionAnalyzer(host, TEGRA_K1)
        timing_rows = []
        power_rows = []
        for app in ESTIMATION_APPS:
            spec = get_workload(app)
            kernel, launch = spec.kernel, spec.launch_config()

            # Step 1-2 (Fig. 7): compile for both targets, execute on
            # the host GPU, and collect the profile.
            host_profile = analyzer.profile_on_host(kernel, launch)

            # Step 3-4: derive the target estimates.
            estimate = analyzer.analyze(kernel, launch, host_profile=host_profile)
            truth = analyzer.observe_on_target(kernel, launch)
            as_ms = analyzer.estimated_time_ms
            timing_rows.append((
                app,
                host_profile.time_ms,
                truth.time_ms,
                as_ms(estimate.c_cycles),
                as_ms(estimate.c_prime_cycles),
                as_ms(estimate.c_double_prime_cycles),
            ))

            # Step 5: power from the expected execution profile (Eq. 6).
            measured = analyzer.observed_power(kernel, launch)
            predicted = analyzer.estimate_power(
                kernel, launch, host_profile=host_profile
            )
            power_rows.append((
                app, measured.total_w, predicted.total_w,
                f"{100 * (predicted.total_w - measured.total_w) / measured.total_w:+.1f}%",
            ))

        print(render_table(
            ["App", "Host (ms)", "Target (ms)", "C (ms)", "C' (ms)", "C'' (ms)"],
            timing_rows,
            title=f"Timing estimation via {host.name} (target: Tegra K1)",
        ))
        print()
        print(render_table(
            ["App", "Measured (W)", "Estimate P (W)", "Error"],
            power_rows,
            title=f"Power estimation via {host.name} (target: Tegra K1)",
        ))
        print()


if __name__ == "__main__":
    main()
