#!/usr/bin/env python3
"""Design-space exploration: choosing the embedded GPU configuration.

The paper's opening motivation: multi-VP simulation "enables many
important design decisions as part of the process of exploring the
design space of the target systems".  This example plays the designer:
given a workload, profile it *once* on the host GPU, then predict
execution time and power for a family of candidate Tegra-K1-derived
targets (SMX count x clock), and print the time/power Pareto front.

Run:  python examples/design_space.py [workload]
"""

import sys

from repro.analysis import (
    pareto_front,
    render_table,
    sweep_targets,
    tegra_scaling_candidates,
)
from repro.workloads import SUITE, get_workload


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "dct8x8"
    if app not in SUITE:
        raise SystemExit(f"unknown workload {app!r}; choose from {sorted(SUITE)}")
    spec = get_workload(app)

    candidates = tegra_scaling_candidates(
        sm_counts=(1, 2, 4), clocks_mhz=(652.0, 752.0, 852.0)
    )
    points = sweep_targets(spec, candidates)
    front = {p.name for p in pareto_front(points)}

    print(render_table(
        ["Candidate target", "Time (ms)", "Power (W)", "Energy (mJ)",
         "EDP", "Pareto"],
        [
            (p.name, p.estimated_time_ms, p.estimated_power_w,
             p.energy_mj, p.energy_delay_product,
             "*" if p.name in front else "")
            for p in sorted(points, key=lambda p: p.estimated_time_ms)
        ],
        title=f"Design-space exploration for {spec.name} "
              "(one host profiling run, Section-4 estimation)",
    ))
    best_edp = min(points, key=lambda p: p.energy_delay_product)
    print(f"\nlowest energy-delay product: {best_edp.name} "
          f"(EDP {best_edp.energy_delay_product:.2f} mJ*ms)")


if __name__ == "__main__":
    main()
