#!/usr/bin/env python3
"""Studying the two optimizations: interleaving and coalescing.

Reproduces the paper's Section 3 microbenchmarks interactively:

* Kernel Interleaving (Fig. 9): sweep the kernel length of the
  copy/kernel/copy loop against Eq. (7), and the number of interleaved
  programs against Eq. (8)'s 3N/(N+2).
* Kernel Coalescing (Fig. 10a): sweep how many of 64 identical
  vectorAdd programs merge into one launch.

Run:  python examples/optimization_study.py
"""

from repro.analysis import (
    fig9a_series,
    fig9b_series,
    fig10a_series,
    render_series,
)


def main() -> None:
    print("Kernel Interleaving: sweeping kernel length (2 programs, "
          "Tm = 13.44 ms)...")
    points = fig9a_series(kernel_lengths_ms=(2.0, 8.0, 13.44, 30.0, 60.0))
    print(render_series(
        "speedup vs kernel length",
        [f"{p.x:.2f}" for p in points],
        [("measured", [p.measured for p in points]),
         ("Eq. (7)", [p.expected for p in points])],
        x_label="kernel ms",
    ))
    peak = max(points, key=lambda p: p.measured)
    print(f"-> peak at ~{peak.x:.1f} ms: latency hiding is strongest when "
          "kernel time matches the copy time\n")

    print("Kernel Interleaving: sweeping program count (Tk = Tm)...")
    points = fig9b_series(program_counts=(2, 4, 8, 16))
    print(render_series(
        "speedup vs N",
        [int(p.x) for p in points],
        [("measured", [p.measured for p in points]),
         ("3N/(N+2)", [p.expected for p in points])],
        x_label="N",
    ))
    print("-> approaches 3x: three pipeline stages fully overlapped\n")

    print("Kernel Coalescing: sweeping batch degree (64 programs)...")
    points = fig10a_series(batch_degrees=(1, 4, 16, 64))
    print(render_series(
        "coalescing 64 vectorAdd programs",
        [p.batch for p in points],
        [("time (ms)", [p.total_ms for p in points]),
         ("speedup", [p.speedup for p in points])],
        x_label="batch",
    ))
    print("-> merged launches amortize launch/profiling overhead and "
          "realign small grids to the device's wave quantum")


if __name__ == "__main__":
    main()
